"""Synthetic honeypot contract corpus (the Table 3 evaluation substrate).

The paper evaluates CCD against SmartEmbed on the honeypot dataset of
Torres et al. (379 contracts across nine honeypot techniques).  Honeypots
are ideal clone-detection material because scammers redeploy the same
technique with light modifications.  This generator reproduces that
structure: nine technique families, each with one base implementation and a
number of Type I/II/III variants.
"""

from __future__ import annotations

import random

from repro.datasets.corpus import HoneypotContract
from repro.datasets.mutations import CloneMutator

#: The nine honeypot techniques of Torres et al. with the (scaled-down)
#: number of contracts generated per family.  The original dataset sizes
#: are in the same relative order (hidden state update is by far the
#: largest family).
HONEYPOT_TYPES: dict[str, int] = {
    "balance_disorder": 12,
    "type_deduction_overflow": 6,
    "hidden_transfer": 10,
    "unexecuted_call": 6,
    "uninitialised_struct": 14,
    "hidden_state_update": 40,
    "inheritance_disorder": 14,
    "skip_empty_string_literal": 6,
    "straw_man_contract": 16,
}


def _balance_disorder(name: str) -> str:
    return f"""pragma solidity ^0.4.19;

contract {name} {{
    function multiplicate(address adr) public payable {{
        if (msg.value >= this.balance) {{
            adr.transfer(this.balance + msg.value);
        }}
    }}

    function withdraw() public {{
        require(msg.sender == owner);
        msg.sender.transfer(this.balance);
    }}

    address owner;

    function {name}() public {{
        owner = msg.sender;
    }}
}}
"""


def _type_deduction_overflow(name: str) -> str:
    return f"""pragma solidity ^0.4.19;

contract {name} {{
    function double(address target) public payable {{
        uint amount = 0;
        for (var i = 0; i < 2 * msg.value; i++) {{
            amount += 1;
        }}
        target.transfer(amount);
    }}

    function refund() public {{
        msg.sender.transfer(this.balance);
    }}
}}
"""


def _hidden_transfer(name: str) -> str:
    return f"""pragma solidity ^0.4.19;

contract {name} {{
    address owner;
    function {name}() public {{ owner = msg.sender; }}

    function withdrawAll() public payable {{
        if (msg.value >= 1 ether) {{ msg.sender.transfer(this.balance); }}
    }}

    function hidden() internal {{ owner.transfer(this.balance); }}

    function deposit() public payable {{ hidden(); }}
}}
"""


def _unexecuted_call(name: str) -> str:
    return f"""pragma solidity ^0.4.19;

contract {name} {{
    address owner;
    address caller;

    function {name}() public {{ owner = msg.sender; }}

    function claim() public payable {{
        if (msg.value > 0.5 ether) {{
            caller = msg.sender;
            owner.call.value(this.balance);
        }}
    }}
}}
"""


def _uninitialised_struct(name: str) -> str:
    return f"""pragma solidity ^0.4.19;

contract {name} {{
    address owner;
    uint depositAmount;

    struct Gift {{
        uint amount;
        address sender;
    }}

    function {name}() public {{ owner = msg.sender; }}

    function sendGift(uint amount) public payable {{
        Gift gift;
        gift.amount = amount;
        gift.sender = msg.sender;
        depositAmount += msg.value;
    }}

    function takeGift() public {{
        require(msg.sender == owner);
        msg.sender.transfer(this.balance);
    }}
}}
"""


def _hidden_state_update(name: str) -> str:
    return f"""pragma solidity ^0.4.19;

contract {name} {{
    bytes32 hashPass;
    address owner;

    function {name}() public {{ owner = msg.sender; }}

    function setPass(bytes32 hash) public payable {{
        if (msg.value > 1 ether) {{
            hashPass = hash;
        }}
    }}

    function getGift(bytes pass) public payable returns (uint) {{
        if (hashPass == sha3(pass)) {{
            msg.sender.transfer(this.balance);
        }}
        return this.balance;
    }}

    function passHasBeenSet(bytes32 hash) public {{
        if (hash == hashPass) {{
            hashPass = 0x0;
        }}
    }}
}}
"""


def _inheritance_disorder(name: str) -> str:
    return f"""pragma solidity ^0.4.19;

contract Ownable {{
    address public owner;
    function Ownable() public {{ owner = msg.sender; }}
    modifier onlyOwner() {{ require(msg.sender == owner); _; }}
}}

contract {name} is Ownable {{
    address public Owner;

    function withdrawAll() public onlyOwner {{
        msg.sender.transfer(this.balance);
    }}

    function deposit() public payable {{
        if (msg.value > 0.25 ether) {{
            Owner = msg.sender;
        }}
    }}
}}
"""


def _skip_empty_string_literal(name: str) -> str:
    return f"""pragma solidity ^0.4.19;

contract {name} {{
    address owner;

    function {name}() public {{ owner = msg.sender; }}

    function divest(uint amount) public {{
        this.loggedTransfer(amount, "", msg.sender, owner);
    }}

    function loggedTransfer(uint amount, bytes32 message, address target, address currentOwner) public {{
        if (!target.call.value(amount)()) {{
            throw;
        }}
    }}
}}
"""


def _straw_man_contract(name: str) -> str:
    return f"""pragma solidity ^0.4.19;

contract {name} {{
    address owner;
    address logger;

    function {name}(address logContract) public {{
        owner = msg.sender;
        logger = logContract;
    }}

    function deposit() public payable {{
        require(msg.value >= 1 ether);
        logger.delegatecall(bytes4(keccak256("logDeposit()")));
    }}

    function withdraw(uint amount) public {{
        require(msg.sender == owner);
        logger.delegatecall(bytes4(keccak256("logWithdraw()")));
        msg.sender.transfer(amount);
    }}
}}
"""


_BUILDERS = {
    "balance_disorder": _balance_disorder,
    "type_deduction_overflow": _type_deduction_overflow,
    "hidden_transfer": _hidden_transfer,
    "unexecuted_call": _unexecuted_call,
    "uninitialised_struct": _uninitialised_struct,
    "hidden_state_update": _hidden_state_update,
    "inheritance_disorder": _inheritance_disorder,
    "skip_empty_string_literal": _skip_empty_string_literal,
    "straw_man_contract": _straw_man_contract,
}


def generate_honeypot_corpus(
    seed: int = 7,
    counts: dict[str, int] | None = None,
) -> list[HoneypotContract]:
    """Generate the honeypot clone corpus.

    Each family starts from its technique template; subsequent members are
    Type I/II/III mutations of the template so that intra-family pairs are
    true clones while inter-family pairs are not.
    """
    rng = random.Random(seed)
    mutator = CloneMutator(rng=rng)
    counts = dict(HONEYPOT_TYPES if counts is None else counts)
    contracts: list[HoneypotContract] = []
    address_counter = 0
    for honeypot_type, count in counts.items():
        builder = _BUILDERS[honeypot_type]
        for variant in range(count):
            name = f"{''.join(part.capitalize() for part in honeypot_type.split('_'))}{variant}"
            base = builder(name)
            if variant == 0:
                source = base
            else:
                clone_type = rng.choice([1, 1, 2, 2, 3])
                source = mutator.mutate(base, clone_type)
            address_counter += 1
            contracts.append(
                HoneypotContract(
                    address=f"0x{address_counter:040x}",
                    source=source,
                    honeypot_type=honeypot_type,
                    family_variant=variant,
                )
            )
    return contracts
