"""Parameterised Solidity templates for vulnerable and benign code.

Every template produces a :class:`TemplateInstance` containing

* a full contract embedding the vulnerability (used by the SmartBugs-style
  corpus and as deployed-contract material),
* the vulnerable function in isolation (the *Functions* dataset of
  Section 4.6.1 and function-shaped Q&A snippets),
* the vulnerable statements in isolation (the *Statements* dataset and
  statement-shaped Q&A snippets), and
* optionally a mitigated variant of the contract (used to model deployed
  contracts that adopted a snippet but fixed the issue).

Templates draw identifier names from pools so repeated instantiation
produces Type-II-style variety, which is exactly the situation the clone
detector must handle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.ccc.dasp import DaspCategory

_OWNER_NAMES = ["owner", "admin", "creator", "manager", "deployer", "controller"]
_BALANCE_NAMES = ["balances", "credits", "deposits", "funds", "holdings", "userBalance"]
_AMOUNT_NAMES = ["amount", "value", "sum", "quantity", "wad", "tokens"]
_WITHDRAW_NAMES = ["withdraw", "getFunds", "collect", "redeem", "cashOut", "claimFunds"]
_TRANSFER_NAMES = ["transfer", "sendTokens", "moveTokens", "pay", "transferTo"]
_CONTRACT_NAMES = ["Wallet", "Vault", "Bank", "Token", "Crowdsale", "Lottery", "Game",
                   "Escrow", "Splitter", "Registry", "Auction", "Fund", "Pool", "Store"]
_RECIPIENT_NAMES = ["to", "recipient", "dest", "receiver", "target"]
_PRAGMAS_OLD = ["pragma solidity ^0.4.19;", "pragma solidity ^0.4.24;", "pragma solidity ^0.4.25;",
                "pragma solidity 0.4.26;", "pragma solidity ^0.5.0;"]
_PRAGMAS_NEW = ["pragma solidity ^0.8.0;", "pragma solidity ^0.8.17;", "pragma solidity 0.8.19;"]


@dataclass
class TemplateInstance:
    """One generated vulnerable (or benign) code artefact."""

    category: Optional[DaspCategory]
    contract_source: str
    function_snippet: str = ""
    statement_snippet: str = ""
    mitigated_source: str = ""
    label_count: int = 1
    needs_context: bool = False
    template_id: str = ""
    identifiers: dict = field(default_factory=dict)

    @property
    def vulnerable(self) -> bool:
        return self.category is not None


def _pick(rng: random.Random, pool: list[str]) -> str:
    return rng.choice(pool)


def _contract_name(rng: random.Random) -> str:
    return f"{_pick(rng, _CONTRACT_NAMES)}{rng.randint(1, 9999)}"


# ---------------------------------------------------------------------------
# Reentrancy
# ---------------------------------------------------------------------------


def reentrancy_withdraw(rng: random.Random, index: int = 0) -> TemplateInstance:
    """Classic DAO-style withdraw: external call before the balance update."""
    contract = _contract_name(rng)
    balances = _pick(rng, _BALANCE_NAMES)
    amount = _pick(rng, _AMOUNT_NAMES)
    withdraw = _pick(rng, _WITHDRAW_NAMES)
    call_style = rng.choice(["oldvalue", "specifier", "plain"])
    if call_style == "oldvalue":
        call_line = f"        if (!msg.sender.call.value({amount})()) {{ throw; }}"
    elif call_style == "specifier":
        call_line = f"        (bool ok, ) = msg.sender.call{{value: {amount}}}(\"\");\n        require(ok);"
    else:
        call_line = f"        msg.sender.call.value({amount})();"
    function_snippet = (
        f"function {withdraw}(uint {amount}) public {{\n"
        f"    require({balances}[msg.sender] >= {amount});\n"
        f"{call_line.replace('        ', '    ')}\n"
        f"    {balances}[msg.sender] -= {amount};\n"
        f"}}"
    )
    statement_snippet = (
        f"require({balances}[msg.sender] >= {amount});\n"
        f"{call_line.strip()}\n"
        f"{balances}[msg.sender] -= {amount};"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    mapping(address => uint) public {balances};

    function deposit() public payable {{
        {balances}[msg.sender] += msg.value;
    }}

    function {withdraw}(uint {amount}) public {{
        require({balances}[msg.sender] >= {amount});
{call_line}
        {balances}[msg.sender] -= {amount};
    }}

    function balanceOf(address holder) public view returns (uint) {{
        return {balances}[holder];
    }}
}}
"""
    mitigated = contract_source.replace(
        f"{call_line}\n        {balances}[msg.sender] -= {amount};",
        f"        {balances}[msg.sender] -= {amount};\n        msg.sender.transfer({amount});",
    )
    return TemplateInstance(
        category=DaspCategory.REENTRANCY,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=statement_snippet,
        mitigated_source=mitigated,
        template_id="reentrancy-withdraw",
        identifiers={"contract": contract, "balances": balances, "amount": amount, "function": withdraw},
    )


# ---------------------------------------------------------------------------
# Access control
# ---------------------------------------------------------------------------


def access_control_owner_takeover(rng: random.Random, index: int = 0) -> TemplateInstance:
    """An initialisation function that lets anyone become the owner."""
    contract = _contract_name(rng)
    owner = _pick(rng, _OWNER_NAMES)
    setter = rng.choice(["initOwner", "initialize", "setup", "becomeOwner", "init"])
    function_snippet = (
        f"function {setter}(address newOwner) public {{\n"
        f"    {owner} = newOwner;\n"
        f"}}"
    )
    statement_snippet = f"{owner} = newOwner;"
    pragma = _pick(rng, _PRAGMAS_OLD + _PRAGMAS_NEW)
    contract_source = f"""{pragma}

contract {contract} {{
    address public {owner};
    uint public total;

    constructor() public {{
        {owner} = msg.sender;
    }}

    function {setter}(address newOwner) public {{
        {owner} = newOwner;
    }}

    function sweep() public {{
        require(msg.sender == {owner});
        msg.sender.transfer(address(this).balance);
    }}

    function deposit() public payable {{
        total += msg.value;
    }}
}}
"""
    mitigated = contract_source.replace(
        f"    function {setter}(address newOwner) public {{\n        {owner} = newOwner;\n    }}",
        f"    function {setter}(address newOwner) public {{\n        require(msg.sender == {owner});\n        {owner} = newOwner;\n    }}",
    )
    return TemplateInstance(
        category=DaspCategory.ACCESS_CONTROL,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=statement_snippet,
        mitigated_source=mitigated,
        template_id="access-control-owner-takeover",
        identifiers={"contract": contract, "owner": owner, "function": setter},
    )


def access_control_selfdestruct(rng: random.Random, index: int = 0) -> TemplateInstance:
    """An unprotected kill switch."""
    contract = _contract_name(rng)
    kill = rng.choice(["kill", "destroy", "shutdown", "close", "terminate"])
    function_snippet = (
        f"function {kill}() public {{\n"
        f"    selfdestruct(msg.sender);\n"
        f"}}"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    address owner;
    mapping(address => uint) stakes;

    constructor() public {{
        owner = msg.sender;
    }}

    function stake() public payable {{
        stakes[msg.sender] += msg.value;
    }}

    function {kill}() public {{
        selfdestruct(msg.sender);
    }}
}}
"""
    mitigated = contract_source.replace(
        f"    function {kill}() public {{\n        selfdestruct(msg.sender);",
        f"    function {kill}() public {{\n        require(msg.sender == owner);\n        selfdestruct(msg.sender);",
    )
    return TemplateInstance(
        category=DaspCategory.ACCESS_CONTROL,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet="selfdestruct(msg.sender);",
        mitigated_source=mitigated,
        template_id="access-control-selfdestruct",
        identifiers={"contract": contract, "function": kill},
    )


def access_control_delegatecall_proxy(rng: random.Random, index: int = 0) -> TemplateInstance:
    """The Parity-style default function forwarding msg.data via delegatecall."""
    contract = _contract_name(rng)
    library_field = rng.choice(["lib", "walletLibrary", "impl", "logic", "delegate"])
    function_snippet = (
        f"function () payable {{\n"
        f"    {library_field}.delegatecall(msg.data);\n"
        f"}}"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    address {library_field};
    address owner;

    function {contract}(address target) public {{
        {library_field} = target;
        owner = msg.sender;
    }}

    function () payable {{
        {library_field}.delegatecall(msg.data);
    }}
}}
"""
    mitigated = contract_source.replace(
        f"    function () payable {{\n        {library_field}.delegatecall(msg.data);\n    }}",
        f"    function () payable {{\n        require(msg.data.length == 0);\n        {library_field}.delegatecall(msg.data);\n    }}",
    )
    return TemplateInstance(
        category=DaspCategory.ACCESS_CONTROL,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=f"{library_field}.delegatecall(msg.data);",
        mitigated_source=mitigated,
        template_id="access-control-delegatecall",
        identifiers={"contract": contract, "library": library_field},
    )


def access_control_tx_origin(rng: random.Random, index: int = 0) -> TemplateInstance:
    """tx.origin used for authentication."""
    contract = _contract_name(rng)
    owner = _pick(rng, _OWNER_NAMES)
    pay = rng.choice(["sendTo", "payOut", "forward", "release"])
    function_snippet = (
        f"function {pay}(address to, uint amount) public {{\n"
        f"    require(tx.origin == {owner});\n"
        f"    to.call.value(amount)();\n"
        f"}}"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    address {owner};

    constructor() public {{
        {owner} = msg.sender;
    }}

    function {pay}(address to, uint amount) public {{
        require(tx.origin == {owner});
        to.call.value(amount)();
    }}

    function deposit() public payable {{}}
}}
"""
    mitigated = contract_source.replace("tx.origin", "msg.sender")
    return TemplateInstance(
        category=DaspCategory.ACCESS_CONTROL,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=f"require(tx.origin == {owner});\nto.call.value(amount)();",
        mitigated_source=mitigated,
        label_count=1,
        template_id="access-control-tx-origin",
        identifiers={"contract": contract, "owner": owner, "function": pay},
    )


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


def arithmetic_token_transfer(rng: random.Random, index: int = 0) -> TemplateInstance:
    """Unchecked token arithmetic under a pre-0.8 compiler."""
    contract = _contract_name(rng)
    balances = _pick(rng, _BALANCE_NAMES)
    transfer = _pick(rng, _TRANSFER_NAMES)
    recipient = _pick(rng, _RECIPIENT_NAMES)
    amount = _pick(rng, _AMOUNT_NAMES)
    function_snippet = (
        f"function {transfer}(address {recipient}, uint {amount}) public {{\n"
        f"    {balances}[msg.sender] -= {amount};\n"
        f"    {balances}[{recipient}] += {amount};\n"
        f"}}"
    )
    statement_snippet = (
        f"{balances}[msg.sender] -= {amount};\n"
        f"{balances}[{recipient}] += {amount};"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    mapping(address => uint) {balances};
    uint public totalSupply;

    constructor(uint supply) public {{
        totalSupply = supply;
        {balances}[msg.sender] = supply;
    }}

    function {transfer}(address {recipient}, uint {amount}) public {{
        {balances}[msg.sender] -= {amount};
        {balances}[{recipient}] += {amount};
    }}

    function balanceOf(address holder) public view returns (uint) {{
        return {balances}[holder];
    }}
}}
"""
    mitigated = contract_source.replace(
        f"        {balances}[msg.sender] -= {amount};\n        {balances}[{recipient}] += {amount};",
        f"        require({balances}[msg.sender] >= {amount});\n"
        f"        require({balances}[{recipient}] + {amount} >= {balances}[{recipient}]);\n"
        f"        {balances}[msg.sender] -= {amount};\n        {balances}[{recipient}] += {amount};",
    )
    return TemplateInstance(
        category=DaspCategory.ARITHMETIC,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=statement_snippet,
        mitigated_source=mitigated,
        label_count=2,
        template_id="arithmetic-token-transfer",
        identifiers={"contract": contract, "balances": balances, "function": transfer},
    )


def arithmetic_timed_lock(rng: random.Random, index: int = 0) -> TemplateInstance:
    """Lock-time extension that can overflow."""
    contract = _contract_name(rng)
    locktime = rng.choice(["lockTime", "unlockAt", "releaseTime", "deadline"])
    function_snippet = (
        f"function increaseLockTime(uint extra) public {{\n"
        f"    {locktime}[msg.sender] += extra;\n"
        f"}}"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    mapping(address => uint) balances;
    mapping(address => uint) {locktime};

    function deposit() public payable {{
        balances[msg.sender] += msg.value;
        {locktime}[msg.sender] = now + 1 weeks;
    }}

    function increaseLockTime(uint extra) public {{
        {locktime}[msg.sender] += extra;
    }}

    function withdraw() public {{
        require(now > {locktime}[msg.sender]);
        require(balances[msg.sender] > 0);
        uint amount = balances[msg.sender];
        balances[msg.sender] = 0;
        msg.sender.transfer(amount);
    }}
}}
"""
    return TemplateInstance(
        category=DaspCategory.ARITHMETIC,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=f"{locktime}[msg.sender] += extra;",
        label_count=1,
        template_id="arithmetic-timed-lock",
        identifiers={"contract": contract, "locktime": locktime},
    )


# ---------------------------------------------------------------------------
# Bad randomness
# ---------------------------------------------------------------------------


def bad_randomness_lottery(rng: random.Random, index: int = 0) -> TemplateInstance:
    """A lottery deciding the winner from block attributes."""
    contract = _contract_name(rng)
    attribute = rng.choice(["block.timestamp", "block.number", "block.difficulty", "now"])
    play = rng.choice(["play", "bet", "spin", "roll", "guess"])
    function_snippet = (
        f"function {play}() public payable {{\n"
        f"    uint random = uint(keccak256({attribute})) % 100;\n"
        f"    if (random > 50) {{\n"
        f"        msg.sender.transfer(msg.value * 2);\n"
        f"    }}\n"
        f"}}"
    )
    statement_snippet = (
        f"uint random = uint(keccak256({attribute})) % 100;\n"
        f"if (random > 50) {{\n"
        f"    msg.sender.transfer(msg.value * 2);\n"
        f"}}"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    address owner;
    uint public pot;

    constructor() public payable {{
        owner = msg.sender;
        pot = msg.value;
    }}

    function {play}() public payable {{
        require(msg.value >= 0.1 ether);
        pot += msg.value;
        uint random = uint(keccak256({attribute})) % 100;
        if (random > 50) {{
            msg.sender.transfer(msg.value * 2);
        }}
    }}
}}
"""
    return TemplateInstance(
        category=DaspCategory.BAD_RANDOMNESS,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=statement_snippet,
        template_id="bad-randomness-lottery",
        identifiers={"contract": contract, "attribute": attribute, "function": play},
    )


def bad_randomness_blockhash(rng: random.Random, index: int = 0) -> TemplateInstance:
    """Winner selection via blockhash of a user-chosen block."""
    contract = _contract_name(rng)
    function_snippet = (
        "function random(uint seed) internal view returns (uint) {\n"
        "    return uint(keccak256(blockhash(block.number - 1), seed));\n"
        "}"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    address[] players;
    uint jackpot;

    function join() public payable {{
        require(msg.value == 1 ether);
        players.push(msg.sender);
        jackpot += msg.value;
    }}

    function random(uint seed) internal view returns (uint) {{
        return uint(keccak256(blockhash(block.number - 1), seed));
    }}

    function draw() public {{
        uint index = random(players.length) % players.length;
        players[index].transfer(jackpot);
        jackpot = 0;
    }}
}}
"""
    return TemplateInstance(
        category=DaspCategory.BAD_RANDOMNESS,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet="return uint(keccak256(blockhash(block.number - 1), seed));",
        label_count=1,
        needs_context=True,
        template_id="bad-randomness-blockhash",
        identifiers={"contract": contract},
    )


# ---------------------------------------------------------------------------
# Denial of Service
# ---------------------------------------------------------------------------


def dos_payout_loop(rng: random.Random, index: int = 0) -> TemplateInstance:
    """Unbounded payout loop over a caller-growable array."""
    contract = _contract_name(rng)
    investors = rng.choice(["investors", "payees", "holders", "members", "participants"])
    function_snippet = (
        f"function distribute() public {{\n"
        f"    for (uint i = 0; i < {investors}.length; i++) {{\n"
        f"        {investors}[i].transfer(payouts[{investors}[i]]);\n"
        f"    }}\n"
        f"}}"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    address[] {investors};
    mapping(address => uint) payouts;

    function join() public payable {{
        {investors}.push(msg.sender);
        payouts[msg.sender] += msg.value;
    }}

    function distribute() public {{
        for (uint i = 0; i < {investors}.length; i++) {{
            {investors}[i].transfer(payouts[{investors}[i]]);
        }}
    }}
}}
"""
    return TemplateInstance(
        category=DaspCategory.DENIAL_OF_SERVICE,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=(
            f"for (uint i = 0; i < {investors}.length; i++) {{\n"
            f"    {investors}[i].transfer(payouts[{investors}[i]]);\n"
            f"}}"
        ),
        template_id="dos-payout-loop",
        identifiers={"contract": contract, "investors": investors},
    )


def dos_blocking_transfer(rng: random.Random, index: int = 0) -> TemplateInstance:
    """A refund to the previous leader that can block new bids (king-of-the-hill)."""
    contract = _contract_name(rng)
    leader = rng.choice(["king", "leader", "champion", "richest"])
    function_snippet = (
        f"function bid() public payable {{\n"
        f"    require(msg.value > highestBid);\n"
        f"    {leader}.transfer(highestBid);\n"
        f"    {leader} = msg.sender;\n"
        f"    highestBid = msg.value;\n"
        f"}}"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    address {leader};
    uint highestBid;

    function bid() public payable {{
        require(msg.value > highestBid);
        {leader}.transfer(highestBid);
        {leader} = msg.sender;
        highestBid = msg.value;
    }}
}}
"""
    mitigated = contract_source.replace(
        f"        {leader}.transfer(highestBid);\n        {leader} = msg.sender;",
        f"        pendingReturns[{leader}] += highestBid;\n        {leader} = msg.sender;",
    ).replace(
        f"    uint highestBid;",
        f"    uint highestBid;\n    mapping(address => uint) pendingReturns;",
    )
    return TemplateInstance(
        category=DaspCategory.DENIAL_OF_SERVICE,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=(
            f"require(msg.value > highestBid);\n"
            f"{leader}.transfer(highestBid);\n"
            f"{leader} = msg.sender;\n"
            f"highestBid = msg.value;"
        ),
        mitigated_source=mitigated,
        template_id="dos-blocking-transfer",
        identifiers={"contract": contract, "leader": leader},
    )


# ---------------------------------------------------------------------------
# Front running
# ---------------------------------------------------------------------------


def front_running_puzzle(rng: random.Random, index: int = 0) -> TemplateInstance:
    """A puzzle reward that a miner/observer can claim by copying the solution."""
    contract = _contract_name(rng)
    solve = rng.choice(["solve", "claim", "submitSolution", "answer"])
    function_snippet = (
        f"function {solve}(bytes32 solution) public {{\n"
        f"    if (keccak256(solution) == target) {{\n"
        f"        winner = msg.sender;\n"
        f"        msg.sender.transfer(reward);\n"
        f"    }}\n"
        f"}}"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    bytes32 target;
    address winner;
    uint reward;

    constructor(bytes32 t) public payable {{
        target = t;
        reward = msg.value;
    }}

    function {solve}(bytes32 solution) public {{
        if (keccak256(solution) == target) {{
            winner = msg.sender;
            msg.sender.transfer(reward);
        }}
    }}
}}
"""
    return TemplateInstance(
        category=DaspCategory.FRONT_RUNNING,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=(
            "if (keccak256(solution) == target) {\n"
            "    winner = msg.sender;\n"
            "    msg.sender.transfer(reward);\n"
            "}"
        ),
        label_count=1,
        template_id="front-running-puzzle",
        identifiers={"contract": contract, "function": solve},
    )


# ---------------------------------------------------------------------------
# Short addresses
# ---------------------------------------------------------------------------


def short_address_token(rng: random.Random, index: int = 0) -> TemplateInstance:
    """An ERC20-style transfer without a calldata length check."""
    contract = _contract_name(rng)
    balances = _pick(rng, _BALANCE_NAMES)
    recipient = _pick(rng, _RECIPIENT_NAMES)
    function_snippet = (
        f"function transfer(address {recipient}, uint amount) public returns (bool) {{\n"
        f"    require({balances}[msg.sender] >= amount);\n"
        f"    {balances}[msg.sender] -= amount;\n"
        f"    {balances}[{recipient}] += amount;\n"
        f"    return true;\n"
        f"}}"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    mapping(address => uint) {balances};

    constructor() public {{
        {balances}[msg.sender] = 1000000;
    }}

    function transfer(address {recipient}, uint amount) public returns (bool) {{
        require({balances}[msg.sender] >= amount);
        {balances}[msg.sender] -= amount;
        {balances}[{recipient}] += amount;
        return true;
    }}
}}
"""
    mitigated = contract_source.replace(
        f"    function transfer(address {recipient}, uint amount) public returns (bool) {{\n",
        f"    modifier onlyPayloadSize(uint size) {{\n"
        f"        require(msg.data.length >= size + 4);\n"
        f"        _;\n"
        f"    }}\n\n"
        f"    function transfer(address {recipient}, uint amount) public onlyPayloadSize(2 * 32) returns (bool) {{\n",
    )
    return TemplateInstance(
        category=DaspCategory.SHORT_ADDRESSES,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=(
            f"require({balances}[msg.sender] >= amount);\n"
            f"{balances}[msg.sender] -= amount;\n"
            f"{balances}[{recipient}] += amount;"
        ),
        mitigated_source=mitigated,
        template_id="short-address-token",
        identifiers={"contract": contract, "balances": balances},
    )


# ---------------------------------------------------------------------------
# Time manipulation
# ---------------------------------------------------------------------------


def time_manipulation_payout(rng: random.Random, index: int = 0) -> TemplateInstance:
    """A payout decided by the block timestamp."""
    contract = _contract_name(rng)
    attribute = rng.choice(["now", "block.timestamp"])
    function_snippet = (
        f"function finalize() public {{\n"
        f"    if ({attribute} % 15 == 0) {{\n"
        f"        msg.sender.transfer(address(this).balance);\n"
        f"    }}\n"
        f"}}"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    function deposit() public payable {{}}

    function finalize() public {{
        if ({attribute} % 15 == 0) {{
            msg.sender.transfer(address(this).balance);
        }}
    }}
}}
"""
    return TemplateInstance(
        category=DaspCategory.TIME_MANIPULATION,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=(
            f"if ({attribute} % 15 == 0) {{\n"
            f"    msg.sender.transfer(address(this).balance);\n"
            f"}}"
        ),
        template_id="time-manipulation-payout",
        identifiers={"contract": contract, "attribute": attribute},
    )


# ---------------------------------------------------------------------------
# Unchecked low level calls
# ---------------------------------------------------------------------------


def unchecked_send(rng: random.Random, index: int = 0) -> TemplateInstance:
    """The return value of send/call is ignored."""
    contract = _contract_name(rng)
    call_kind = rng.choice(["send", "call"])
    pay = rng.choice(["payWinner", "refund", "sendPayment", "payout"])
    if call_kind == "send":
        call_line = "    to.send(amount);"
    else:
        call_line = "    to.call.value(amount)();"
    function_snippet = (
        f"function {pay}(address to, uint amount) public {{\n"
        f"    require(msg.sender == owner);\n"
        f"    require(owed[to] >= amount);\n"
        f"    owed[to] -= amount;\n"
        f"{call_line}\n"
        f"}}"
    )
    pragma = _pick(rng, _PRAGMAS_OLD)
    contract_source = f"""{pragma}

contract {contract} {{
    address owner;
    mapping(address => uint) owed;

    constructor() public {{
        owner = msg.sender;
    }}

    function {pay}(address to, uint amount) public {{
        require(msg.sender == owner);
        require(owed[to] >= amount);
        owed[to] -= amount;
    {call_line}
    }}

    function deposit() public payable {{
        owed[msg.sender] += msg.value;
    }}
}}
"""
    mitigated = contract_source.replace(
        call_line.strip(), f"require({call_line.strip().rstrip(';')});"
    )
    return TemplateInstance(
        category=DaspCategory.UNCHECKED_LOW_LEVEL_CALLS,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=call_line.strip(),
        mitigated_source=mitigated,
        template_id="unchecked-send",
        identifiers={"contract": contract, "function": pay, "call": call_kind},
    )


# ---------------------------------------------------------------------------
# Unknown unknowns
# ---------------------------------------------------------------------------


def uninitialized_storage_struct(rng: random.Random, index: int = 0) -> TemplateInstance:
    """Writes through an uninitialised storage struct pointer."""
    contract = _contract_name(rng)
    function_snippet = (
        "function register(string name) public {\n"
        "    Registration reg;\n"
        "    reg.name = name;\n"
        "    reg.account = msg.sender;\n"
        "}"
    )
    contract_source = f"""pragma solidity ^0.4.24;

contract {contract} {{
    address owner;
    bool unlocked;

    struct Registration {{
        string name;
        address account;
    }}

    constructor() public {{
        owner = msg.sender;
    }}

    function register(string name) public {{
        Registration reg;
        reg.name = name;
        reg.account = msg.sender;
    }}
}}
"""
    mitigated = contract_source.replace("Registration reg;", "Registration memory reg;")
    return TemplateInstance(
        category=DaspCategory.UNKNOWN_UNKNOWNS,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet="Registration reg;\nreg.name = name;\nreg.account = msg.sender;",
        mitigated_source=mitigated,
        template_id="uninitialized-storage-struct",
        identifiers={"contract": contract},
    )


# ---------------------------------------------------------------------------
# Benign templates
# ---------------------------------------------------------------------------


def benign_ownable_store(rng: random.Random, index: int = 0) -> TemplateInstance:
    contract = _contract_name(rng)
    owner = _pick(rng, _OWNER_NAMES)
    pragma = _pick(rng, _PRAGMAS_NEW)
    contract_source = f"""{pragma}

contract {contract} {{
    address public {owner};
    uint private stored;

    constructor() {{
        {owner} = msg.sender;
    }}

    modifier onlyOwner() {{
        require(msg.sender == {owner}, "not authorized");
        _;
    }}

    function set(uint newValue) public onlyOwner {{
        stored = newValue;
    }}

    function get() public view returns (uint) {{
        return stored;
    }}
}}
"""
    function_snippet = (
        f"function set(uint newValue) public onlyOwner {{\n"
        f"    stored = newValue;\n"
        f"}}"
    )
    return TemplateInstance(
        category=None,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet="stored = newValue;",
        template_id="benign-ownable-store",
        identifiers={"contract": contract, "owner": owner},
    )


def benign_safe_wallet(rng: random.Random, index: int = 0) -> TemplateInstance:
    contract = _contract_name(rng)
    balances = _pick(rng, _BALANCE_NAMES)
    pragma = _pick(rng, _PRAGMAS_NEW)
    contract_source = f"""{pragma}

contract {contract} {{
    mapping(address => uint) {balances};

    function deposit() public payable {{
        {balances}[msg.sender] += msg.value;
    }}

    function withdraw(uint amount) public {{
        require({balances}[msg.sender] >= amount, "insufficient balance");
        {balances}[msg.sender] -= amount;
        payable(msg.sender).transfer(amount);
    }}

    function balanceOf(address holder) public view returns (uint) {{
        return {balances}[holder];
    }}
}}
"""
    function_snippet = (
        f"function withdraw(uint amount) public {{\n"
        f"    require({balances}[msg.sender] >= amount, \"insufficient balance\");\n"
        f"    {balances}[msg.sender] -= amount;\n"
        f"    payable(msg.sender).transfer(amount);\n"
        f"}}"
    )
    return TemplateInstance(
        category=None,
        contract_source=contract_source,
        function_snippet=function_snippet,
        statement_snippet=(
            f"require({balances}[msg.sender] >= amount);\n"
            f"{balances}[msg.sender] -= amount;\n"
            f"payable(msg.sender).transfer(amount);"
        ),
        template_id="benign-safe-wallet",
        identifiers={"contract": contract, "balances": balances},
    )


def benign_event_emitter(rng: random.Random, index: int = 0) -> TemplateInstance:
    contract = _contract_name(rng)
    pragma = _pick(rng, _PRAGMAS_NEW)
    contract_source = f"""{pragma}

contract {contract} {{
    event ValueChanged(address indexed who, uint newValue);
    uint public value;

    function update(uint newValue) public {{
        value = newValue;
        emit ValueChanged(msg.sender, newValue);
    }}
}}
"""
    return TemplateInstance(
        category=None,
        contract_source=contract_source,
        function_snippet=(
            "function update(uint newValue) public {\n"
            "    value = newValue;\n"
            "    emit ValueChanged(msg.sender, newValue);\n"
            "}"
        ),
        statement_snippet="value = newValue;\nemit ValueChanged(msg.sender, newValue);",
        template_id="benign-event-emitter",
        identifiers={"contract": contract},
    )


#: Vulnerable templates grouped by DASP category.
VULNERABLE_TEMPLATES: dict[DaspCategory, list[Callable[[random.Random, int], TemplateInstance]]] = {
    DaspCategory.REENTRANCY: [reentrancy_withdraw],
    DaspCategory.ACCESS_CONTROL: [
        access_control_owner_takeover,
        access_control_selfdestruct,
        access_control_delegatecall_proxy,
        access_control_tx_origin,
    ],
    DaspCategory.ARITHMETIC: [arithmetic_token_transfer, arithmetic_timed_lock],
    DaspCategory.BAD_RANDOMNESS: [bad_randomness_lottery, bad_randomness_blockhash],
    DaspCategory.DENIAL_OF_SERVICE: [dos_payout_loop, dos_blocking_transfer],
    DaspCategory.FRONT_RUNNING: [front_running_puzzle],
    DaspCategory.SHORT_ADDRESSES: [short_address_token],
    DaspCategory.TIME_MANIPULATION: [time_manipulation_payout],
    DaspCategory.UNCHECKED_LOW_LEVEL_CALLS: [unchecked_send],
    DaspCategory.UNKNOWN_UNKNOWNS: [uninitialized_storage_struct],
}

#: Benign templates used for non-vulnerable snippets and filler contracts.
BENIGN_TEMPLATES: list[Callable[[random.Random, int], TemplateInstance]] = [
    benign_ownable_store,
    benign_safe_wallet,
    benign_event_emitter,
]


def generate_vulnerable(rng: random.Random, category: DaspCategory, index: int = 0) -> TemplateInstance:
    """Instantiate a random vulnerable template of ``category``."""
    template = rng.choice(VULNERABLE_TEMPLATES[category])
    return template(rng, index)


def generate_benign(rng: random.Random, index: int = 0) -> TemplateInstance:
    """Instantiate a random benign template."""
    template = rng.choice(BENIGN_TEMPLATES)
    return template(rng, index)
