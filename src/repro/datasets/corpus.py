"""Common data structures shared by the dataset generators and the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Optional

from repro.ccc.dasp import DaspCategory


@dataclass
class Snippet:
    """A code snippet extracted from a Q&A post."""

    snippet_id: str
    post_id: str
    site: str
    text: str
    created: date
    views: int
    #: Ground-truth metadata from the generator (never consumed by the
    #: analysis pipeline itself — only by evaluation code).
    ground_truth_vulnerable: bool = False
    ground_truth_category: Optional[DaspCategory] = None
    ground_truth_language: str = "solidity"
    #: Full contract sources the snippet was cut from (used only by the
    #: sanctuary generator to embed realistic clones, never by the pipeline).
    ground_truth_contract_source: str = ""
    ground_truth_mitigated_source: str = ""

    @property
    def lines_of_code(self) -> int:
        return len([line for line in self.text.splitlines() if line.strip()])


@dataclass
class QAPost:
    """A question/answer post on a developer Q&A website."""

    post_id: str
    site: str
    title: str
    created: date
    views: int
    tags: tuple[str, ...] = ("solidity",)
    snippets: list[Snippet] = field(default_factory=list)


@dataclass
class DeployedContract:
    """A verified smart contract deployed on the blockchain."""

    address: str
    source: str
    deployed: date
    compiler_version: str
    #: Ground truth: the snippet the contract embeds a clone of (if any).
    ground_truth_snippet_id: Optional[str] = None
    ground_truth_vulnerable: bool = False
    ground_truth_category: Optional[DaspCategory] = None
    ground_truth_mitigated: bool = False


@dataclass
class LabeledContract:
    """A contract with labelled vulnerabilities (SmartBugs-Curated style)."""

    name: str
    source: str
    category: DaspCategory
    label_count: int = 1
    vulnerable_function: str = ""
    vulnerable_statements: str = ""
    #: Whether the vulnerability requires cross-function context (such cases
    #: are expected to be missed by the Functions/Statements datasets).
    needs_context: bool = False


@dataclass
class HoneypotContract:
    """A honeypot contract belonging to one of nine technique families."""

    address: str
    source: str
    honeypot_type: str
    family_variant: int = 0
