"""Synthetic dataset substrates.

The original study relies on several external data sources that are not
available offline (Stack Overflow / Ethereum Stack Exchange crawls, the
Smart Contract Sanctuary, SmartBugs Curated, and the honeypot dataset of
Torres et al.).  This package provides deterministic generators that
produce corpora with the same *structure* so every pipeline stage and every
table of the paper can be exercised end to end:

* :mod:`repro.datasets.templates` — parameterised Solidity templates for
  vulnerable and benign contracts/snippets (one family per DASP category),
* :mod:`repro.datasets.smartbugs` — a labelled vulnerability corpus plus
  the derived *Functions* and *Statements* snippet datasets (Table 1/2),
* :mod:`repro.datasets.honeypots` — nine honeypot families with
  intra-family clone structure (Table 3),
* :mod:`repro.datasets.snippets` — a Q&A corpus with posts, views,
  timestamps and mixed-language snippets (Table 4),
* :mod:`repro.datasets.sanctuary` — a deployed-contract corpus embedding
  mutated snippet clones with deployment metadata (Tables 5–7),
* :mod:`repro.datasets.mutations` — Type I/II/III clone mutation operators.
"""

from repro.datasets.corpus import (
    DeployedContract,
    HoneypotContract,
    LabeledContract,
    QAPost,
    Snippet,
)
from repro.datasets.honeypots import HONEYPOT_TYPES, generate_honeypot_corpus
from repro.datasets.mutations import CloneMutator
from repro.datasets.sanctuary import SanctuaryCorpus, generate_sanctuary
from repro.datasets.smartbugs import (
    SmartBugsCorpus,
    SmartBugsEntry,
    generate_smartbugs_corpus,
)
from repro.datasets.snippets import QACorpus, generate_qa_corpus

__all__ = [
    "CloneMutator",
    "DeployedContract",
    "HONEYPOT_TYPES",
    "HoneypotContract",
    "LabeledContract",
    "QACorpus",
    "QAPost",
    "SanctuaryCorpus",
    "SmartBugsCorpus",
    "SmartBugsEntry",
    "Snippet",
    "generate_honeypot_corpus",
    "generate_qa_corpus",
    "generate_sanctuary",
    "generate_smartbugs_corpus",
]
