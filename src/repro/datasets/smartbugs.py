"""Synthetic SmartBugs-Curated-style labelled vulnerability corpus.

SmartBugs Curated contains 143 Solidity files with 204 labelled
vulnerabilities across the DASP categories; the paper evaluates CCC (and
eight other tools) on it and additionally derives two snippet datasets
(*Functions* and *Statements*) from the labelled code (Section 4.6.1).

This generator reproduces the corpus structure: per-category labelled
contracts instantiated from the vulnerability templates, the same label
counts per category as Table 1, and the two derived snippet datasets.  A
fraction of the entries is generated as "context-dependent" — the labelled
code only manifests the issue together with code outside the extracted
function — so that, as in the paper, detection on the derived snippet
datasets loses some recall.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ccc.dasp import DaspCategory
from repro.datasets.corpus import LabeledContract
from repro.datasets.templates import generate_vulnerable

#: Number of labelled vulnerabilities per category, matching the "#" column
#: of Table 1 in the paper.
DEFAULT_LABEL_COUNTS: dict[DaspCategory, int] = {
    DaspCategory.ACCESS_CONTROL: 21,
    DaspCategory.ARITHMETIC: 23,
    DaspCategory.BAD_RANDOMNESS: 31,
    DaspCategory.DENIAL_OF_SERVICE: 7,
    DaspCategory.FRONT_RUNNING: 7,
    DaspCategory.REENTRANCY: 32,
    DaspCategory.SHORT_ADDRESSES: 1,
    DaspCategory.TIME_MANIPULATION: 7,
    DaspCategory.UNCHECKED_LOW_LEVEL_CALLS: 75,
}

#: Fraction of entries whose vulnerability needs surrounding context and is
#: therefore expected to be missed on the derived snippet datasets.
_CONTEXT_DEPENDENT_FRACTION = 0.12

#: Fraction of entries that are made harder to detect (the vulnerable code
#: is wrapped in extra indirection), modelling the cases every tool misses.
_HARD_FRACTION = 0.18


@dataclass
class SmartBugsEntry:
    """One file of the labelled corpus."""

    name: str
    category: DaspCategory
    contract: LabeledContract
    hard: bool = False

    @property
    def source(self) -> str:
        return self.contract.source

    @property
    def label_count(self) -> int:
        return self.contract.label_count


@dataclass
class SmartBugsCorpus:
    """The labelled corpus plus its derived snippet datasets."""

    entries: list[SmartBugsEntry] = field(default_factory=list)

    def by_category(self, category: DaspCategory) -> list[SmartBugsEntry]:
        return [entry for entry in self.entries if entry.category == category]

    @property
    def total_labels(self) -> int:
        return sum(entry.label_count for entry in self.entries)

    @property
    def categories(self) -> list[DaspCategory]:
        return sorted({entry.category for entry in self.entries}, key=lambda category: category.value)

    # -- derived datasets (Section 4.6.1) -------------------------------------
    def derive_functions(self) -> list[tuple[SmartBugsEntry, str]]:
        """The *Functions* dataset: each labelled function in its own snippet."""
        return [(entry, entry.contract.vulnerable_function) for entry in self.entries
                if entry.contract.vulnerable_function]

    def derive_statements(self) -> list[tuple[SmartBugsEntry, str]]:
        """The *Statements* dataset: labelled statements without function headers."""
        return [(entry, entry.contract.vulnerable_statements) for entry in self.entries
                if entry.contract.vulnerable_statements]


def _harden(source: str, rng: random.Random) -> str:
    """Obscure the vulnerability behind an internal helper indirection.

    The resulting contract still contains the issue, but pattern-based
    detection that only looks at one function is likely to miss it — this
    models the labelled cases that no evaluated tool finds.
    """
    lines = source.splitlines()
    helper_name = f"_helper{rng.randint(10, 99)}"
    for index, line in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith(("msg.sender.call", "msg.sender.transfer")) and stripped.endswith(";"):
            indent = len(line) - len(line.lstrip())
            lines[index] = " " * indent + f"{helper_name}();"
            # append an internal helper holding the original statement, but
            # guarded so the path is no longer obviously reachable
            closing = max(i for i, l in enumerate(lines) if l.strip() == "}")
            helper = [
                f"    function {helper_name}() internal {{",
                f"        if (address(this).balance > 0) {{",
                f"            {stripped}",
                "        }",
                "    }",
            ]
            lines[closing:closing] = helper
            break
    return "\n".join(lines) + "\n"


def generate_smartbugs_corpus(
    seed: int = 13,
    label_counts: dict[DaspCategory, int] | None = None,
    include_unknown_unknowns: bool = False,
) -> SmartBugsCorpus:
    """Generate the labelled corpus.

    ``label_counts`` maps each category to the number of labelled
    vulnerabilities; files may carry more than one label (as in the real
    corpus) because some templates label two statements.
    """
    rng = random.Random(seed)
    counts = dict(DEFAULT_LABEL_COUNTS if label_counts is None else label_counts)
    if include_unknown_unknowns:
        counts.setdefault(DaspCategory.UNKNOWN_UNKNOWNS, 3)
    corpus = SmartBugsCorpus()
    file_counter = 0
    for category, wanted_labels in counts.items():
        produced_labels = 0
        while produced_labels < wanted_labels:
            instance = generate_vulnerable(rng, category, index=file_counter)
            remaining = wanted_labels - produced_labels
            label_count = min(instance.label_count, remaining)
            hard = rng.random() < _HARD_FRACTION and category in {
                DaspCategory.ACCESS_CONTROL, DaspCategory.BAD_RANDOMNESS,
                DaspCategory.UNCHECKED_LOW_LEVEL_CALLS, DaspCategory.ARITHMETIC,
                DaspCategory.FRONT_RUNNING,
            }
            source = instance.contract_source
            if hard:
                source = _harden(source, rng)
            needs_context = instance.needs_context or rng.random() < _CONTEXT_DEPENDENT_FRACTION
            file_counter += 1
            name = f"{category.name.lower()}_{file_counter:03d}.sol"
            contract = LabeledContract(
                name=name,
                source=source,
                category=category,
                label_count=label_count,
                vulnerable_function=instance.function_snippet,
                vulnerable_statements=instance.statement_snippet,
                needs_context=needs_context,
            )
            corpus.entries.append(SmartBugsEntry(name=name, category=category,
                                                 contract=contract, hard=hard))
            produced_labels += label_count
    return corpus
