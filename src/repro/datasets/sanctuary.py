"""Synthetic Smart Contract Sanctuary: verified deployed contracts.

The paper maps vulnerable snippets to the 323,328 verified contracts of the
Smart Contract Sanctuary dataset.  This generator produces a deployed
corpus from a generated Q&A corpus:

* for a subset of the Solidity snippets, one or more contracts are deployed
  that embed a (Type I/II/III mutated) clone of the snippet,
* the number of adopting contracts grows with the popularity (views) of the
  snippet's post — more strongly for *source* snippets than for snippets
  that merely re-post already deployed code, which reproduces the Spearman
  correlation structure of Table 5,
* some adopters deploy *before* the snippet was posted (the snippet is a
  re-post of existing code) and some adopt the mitigated variant of the
  code (the vulnerability was fixed during reuse),
* a configurable number of independent contracts unrelated to any snippet
  pads the corpus, and
* compiler-version metadata follows the distribution reported in
  Section 6.1 (59 % v0.8, 16 % v0.6, 13 % v0.4, 7.4 % v0.5, ~4 % v0.7).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from datetime import date, timedelta

from repro.datasets.corpus import DeployedContract, Snippet
from repro.datasets.mutations import CloneMutator
from repro.datasets.snippets import QACorpus
from repro.datasets.templates import generate_benign

_COMPILER_DISTRIBUTION = [
    ("v0.8.19", 0.59),
    ("v0.6.12", 0.16),
    ("v0.4.24", 0.13),
    ("v0.5.17", 0.074),
    ("v0.7.6", 0.04),
]

_DEPLOYMENT_END = date(2023, 7, 14)


@dataclass
class SanctuaryCorpus:
    """The generated deployed-contract corpus with its ground truth."""

    contracts: list[DeployedContract] = field(default_factory=list)
    #: snippet_id -> addresses of contracts embedding that snippet
    ground_truth_embeddings: dict[str, list[str]] = field(default_factory=dict)
    #: snippet ids whose every embedding contract was deployed after the post
    ground_truth_source_snippets: set[str] = field(default_factory=set)

    def by_address(self, address: str) -> DeployedContract:
        for contract in self.contracts:
            if contract.address == address:
                return contract
        raise KeyError(address)

    def __len__(self) -> int:
        return len(self.contracts)


def _compiler_version(rng: random.Random) -> str:
    pick = rng.random()
    cumulative = 0.0
    for version, weight in _COMPILER_DISTRIBUTION:
        cumulative += weight
        if pick <= cumulative:
            return version
    return _COMPILER_DISTRIBUTION[0][0]


def _adoption_count(rng: random.Random, views: int) -> int:
    """More-viewed posts attract more adopters (sub-linear, noisy)."""
    expected = max(0.0, math.log10(max(views, 1)) - 1.0) * 1.3
    count = 0
    remaining = expected * (0.8 + 0.4 * rng.random())
    while remaining > 1.0:
        count += 1
        remaining -= 1.0
    if rng.random() < remaining:
        count += 1
    return count


def _wrap_snippet_in_contract(snippet: Snippet, rng: random.Random) -> str:
    """Fall back wrapper for snippets without a known originating contract."""
    filler = generate_benign(rng)
    body = snippet.text
    if "contract" in body:
        return body + "\n" + filler.contract_source
    name = f"Imported{rng.randint(100, 9999)}"
    state = (
        "    mapping(address => uint) balances;\n"
        "    address owner;\n"
        "    uint reward;\n"
    )
    if body.strip().startswith("function"):
        wrapped = "\n".join("    " + line for line in body.splitlines())
    else:
        wrapped = "    function imported() public {\n" + \
            "\n".join("        " + line for line in body.splitlines()) + "\n    }"
    return (
        "pragma solidity ^0.4.24;\n\n"
        f"contract {name} {{\n{state}\n{wrapped}\n}}\n"
    )


def generate_sanctuary(
    qa_corpus: QACorpus,
    seed: int = 11,
    independent_contracts: int = 150,
    adoption_probability: float = 0.45,
    source_snippet_fraction: float = 0.35,
    mitigation_probability: float = 0.22,
    repost_probability: float = 0.18,
) -> SanctuaryCorpus:
    """Generate deployed contracts from a Q&A corpus.

    Parameters
    ----------
    adoption_probability:
        Probability that a parsable Solidity snippet is adopted by at least
        one deployer at all.
    source_snippet_fraction:
        Among adopted snippets, the fraction whose clones are all deployed
        *after* the post (the paper's *source* snippets).
    mitigation_probability:
        Probability that an adopter deploys the mitigated variant instead of
        the vulnerable one.
    repost_probability:
        Probability that an additional contract pre-dating the post is
        deployed (the snippet then looks like a re-post of existing code).
    """
    rng = random.Random(seed)
    mutator = CloneMutator(rng=rng)
    corpus = SanctuaryCorpus()
    address_counter = 0

    def next_address() -> str:
        nonlocal address_counter
        address_counter += 1
        return f"0x{address_counter:040x}"

    for snippet in qa_corpus.snippets:
        if snippet.ground_truth_language != "solidity":
            continue
        if rng.random() > adoption_probability:
            continue
        is_source = rng.random() < source_snippet_fraction
        if is_source:
            # popularity drives adoption nearly deterministically for source
            # snippets: these model the genuine copy-and-paste origins, so the
            # views -> adoption relationship is the strongest here (Table 5)
            adopters = max(1, int(math.log10(max(snippet.views, 10)) * 1.4) - 1)
            adopters += _adoption_count(rng, snippet.views)
        else:
            adopters = _adoption_count(rng, snippet.views)
        if adopters == 0 and rng.random() < 0.3:
            adopters = 1
        addresses: list[str] = []
        for _ in range(adopters):
            base = snippet.ground_truth_contract_source or _wrap_snippet_in_contract(snippet, rng)
            mitigated = False
            if snippet.ground_truth_vulnerable and snippet.ground_truth_mitigated_source \
                    and rng.random() < mitigation_probability:
                base = snippet.ground_truth_mitigated_source
                mitigated = True
            clone_type = rng.choice([0, 1, 1, 2, 2, 3])
            source = mutator.mutate(base, clone_type)
            if rng.random() < 0.4:
                source = source + "\n" + generate_benign(rng).contract_source
            deployed_after = True
            deploy_date = snippet.created + timedelta(days=rng.randint(1, 400))
            if deploy_date > _DEPLOYMENT_END:
                deploy_date = _DEPLOYMENT_END
            contract = DeployedContract(
                address=next_address(),
                source=source,
                deployed=deploy_date,
                compiler_version=_compiler_version(rng),
                ground_truth_snippet_id=snippet.snippet_id,
                ground_truth_vulnerable=snippet.ground_truth_vulnerable and not mitigated,
                ground_truth_category=snippet.ground_truth_category,
                ground_truth_mitigated=mitigated,
            )
            corpus.contracts.append(contract)
            addresses.append(contract.address)
            del deployed_after
        if not addresses:
            continue
        # optionally add a contract deployed before the post: the snippet is
        # then a re-post of already deployed code rather than its source
        if not is_source and rng.random() < repost_probability:
            base = snippet.ground_truth_contract_source or _wrap_snippet_in_contract(snippet, rng)
            source = mutator.mutate(base, rng.choice([0, 1, 2]))
            earliest = date(2016, 1, 1)
            span = max((snippet.created - earliest).days, 1)
            deploy_date = earliest + timedelta(days=rng.randint(0, span - 1))
            contract = DeployedContract(
                address=next_address(),
                source=source,
                deployed=deploy_date,
                compiler_version=_compiler_version(rng),
                ground_truth_snippet_id=snippet.snippet_id,
                ground_truth_vulnerable=snippet.ground_truth_vulnerable,
                ground_truth_category=snippet.ground_truth_category,
            )
            corpus.contracts.append(contract)
            addresses.append(contract.address)
        elif is_source:
            corpus.ground_truth_source_snippets.add(snippet.snippet_id)
        corpus.ground_truth_embeddings[snippet.snippet_id] = addresses

    # independent contracts unrelated to any snippet
    for _ in range(independent_contracts):
        instance = generate_benign(rng)
        source = mutator.mutate(instance.contract_source, rng.choice([0, 1, 2]))
        earliest = date(2016, 6, 1)
        span = (_DEPLOYMENT_END - earliest).days
        contract = DeployedContract(
            address=next_address(),
            source=source,
            deployed=earliest + timedelta(days=rng.randint(0, span)),
            compiler_version=_compiler_version(rng),
        )
        corpus.contracts.append(contract)
    return corpus
