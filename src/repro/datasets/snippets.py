"""Synthetic Q&A website corpus (Stack Overflow + Ethereum Stack Exchange).

The original study crawls posts tagged ``solidity`` up to June 30, 2023 and
collects 39,434 snippets (Table 4).  This generator reproduces the corpus
*structure* at a configurable scale: two sites, posts with view counts and
creation dates, and snippets of mixed content:

* vulnerable Solidity snippets (function- or statement-shaped, drawn from
  the vulnerability templates),
* benign Solidity snippets,
* JavaScript (web3.js / ethers.js) snippets mis-tagged as Solidity,
* pseudo-code / prose snippets that mention Solidity keywords but cannot be
  parsed, and
* exact duplicates of earlier snippets (to exercise the deduplication
  stage).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import date, timedelta

from repro.ccc.dasp import DaspCategory
from repro.datasets.corpus import QAPost, Snippet
from repro.datasets.templates import generate_benign, generate_vulnerable

SITE_STACK_OVERFLOW = "stackoverflow"
SITE_ETHEREUM_SE = "ethereum.stackexchange"

#: Content mix of generated snippets.  Roughly calibrated so the collection
#: funnel of Table 4 keeps its shape: ~65 % of snippets contain Solidity
#: keywords, ~77 % of those parse, and a few percent are duplicates.
_CONTENT_WEIGHTS = [
    ("vulnerable_contract", 0.10),
    ("vulnerable_function", 0.12),
    ("vulnerable_statements", 0.05),
    ("benign_contract", 0.14),
    ("benign_function", 0.12),
    ("benign_statements", 0.05),
    ("javascript", 0.22),
    ("pseudocode", 0.10),
    ("config_or_log", 0.05),
    ("duplicate", 0.05),
]

_JS_SNIPPETS = [
    """const Web3 = require('web3');
const web3 = new Web3('http://localhost:8545');
web3.eth.getBalance(account).then(console.log);""",
    """const contract = new web3.eth.Contract(abi, contractAddress);
contract.methods.balanceOf(account).call().then((result) => {
  console.log(result);
});""",
    """const tx = await signer.sendTransaction({
  to: recipient,
  value: ethers.utils.parseEther("1.0"),
});
await tx.wait();
console.log(tx.hash);""",
    """module.exports = {
  networks: {
    development: { host: "127.0.0.1", port: 8545, network_id: "*" },
  },
};""",
    """async function main() {
  const Token = await ethers.getContractFactory("Token");
  const token = await Token.deploy();
  console.log("deployed", token.address);
}
main();""",
]

_PSEUDOCODE_SNIPPETS = [
    """you could do something like this in your contract:
first check the balance mapping for the sender
then transfer the amount and afterwards update storage""",
    """Error: VM Exception while processing transaction: revert
    at Object.InvalidResponse (errors.js:38:16)
    at RequestManager.send (requestmanager.js:61:13)""",
    """contract pseudocode:
  if caller is owner then allow withdraw
  else revert the transaction with an error message""",
    """my contract has a function payable that should keep the ether
but when I call it from remix the balance does not change, any idea?""",
    """1. deploy the library first
2. link the library address into the bytecode
3. deploy the main contract passing the library address""",
]

_CONFIG_SNIPPETS = [
    """[profile.default]
src = 'src'
out = 'out'
libs = ['lib']""",
    """pragma: none
compiler: solc 0.8.19
optimizer: enabled 200 runs""",
    """$ npx hardhat compile
Compiled 12 Solidity files successfully""",
]

_TITLES = [
    "How to withdraw ether from my contract?",
    "Why does my transfer function revert?",
    "How do I generate a random number in Solidity?",
    "msg.sender vs tx.origin — which one should I use?",
    "How to send ether from contract to an address?",
    "Mapping balance not updating after transfer",
    "How to restrict a function to the contract owner?",
    "Parity wallet style proxy — is delegatecall safe?",
    "Loop over array of addresses to pay dividends",
    "ERC20 transfer function fails for some amounts",
    "How to schedule a payout after a deadline?",
    "Is block.timestamp safe to use for a lottery?",
]


@dataclass
class QACorpus:
    """The generated Q&A corpus."""

    posts: list[QAPost] = field(default_factory=list)

    @property
    def snippets(self) -> list[Snippet]:
        return [snippet for post in self.posts for snippet in post.snippets]

    def snippets_by_site(self, site: str) -> list[Snippet]:
        return [snippet for snippet in self.snippets if snippet.site == site]

    def posts_by_site(self, site: str) -> list[QAPost]:
        return [post for post in self.posts if post.site == site]


def _weighted_choice(rng: random.Random, weights: list[tuple[str, float]]) -> str:
    total = sum(weight for _, weight in weights)
    pick = rng.random() * total
    cumulative = 0.0
    for name, weight in weights:
        cumulative += weight
        if pick <= cumulative:
            return name
    return weights[-1][0]


def _views(rng: random.Random) -> int:
    """Log-normal-ish view counts: most posts have few views, a few are huge."""
    base = rng.lognormvariate(5.5, 1.6)
    return max(5, int(base))


def _post_date(rng: random.Random) -> date:
    start = date(2016, 1, 1)
    end = date(2023, 6, 30)
    span = (end - start).days
    return start + timedelta(days=rng.randint(0, span))


def generate_qa_corpus(
    seed: int = 3,
    posts_per_site: dict[str, int] | None = None,
    max_snippets_per_post: int = 3,
) -> QACorpus:
    """Generate the Q&A snippet corpus.

    ``posts_per_site`` controls the scale; the default produces a corpus in
    the hundreds of posts which keeps the full pipeline fast while
    preserving the Stack Overflow : Ethereum Stack Exchange ratio of the
    paper (roughly 1 : 2.5).
    """
    rng = random.Random(seed)
    if posts_per_site is None:
        posts_per_site = {SITE_STACK_OVERFLOW: 120, SITE_ETHEREUM_SE: 300}
    corpus = QACorpus()
    previous_solidity_snippets: list[str] = []
    post_counter = 0
    snippet_counter = 0
    for site, post_count in posts_per_site.items():
        for _ in range(post_count):
            post_counter += 1
            post = QAPost(
                post_id=f"{site}-{post_counter}",
                site=site,
                title=rng.choice(_TITLES),
                created=_post_date(rng),
                views=_views(rng),
            )
            for _ in range(rng.randint(1, max_snippets_per_post)):
                snippet_counter += 1
                kind = _weighted_choice(rng, _CONTENT_WEIGHTS)
                text, vulnerable, category, language, contract_source, mitigated = _snippet_content(
                    rng, kind, previous_solidity_snippets,
                )
                snippet = Snippet(
                    snippet_id=f"s{snippet_counter}",
                    post_id=post.post_id,
                    site=site,
                    text=text,
                    created=post.created,
                    views=post.views,
                    ground_truth_vulnerable=vulnerable,
                    ground_truth_category=category,
                    ground_truth_language=language,
                    ground_truth_contract_source=contract_source,
                    ground_truth_mitigated_source=mitigated,
                )
                post.snippets.append(snippet)
                if language == "solidity":
                    previous_solidity_snippets.append(text)
            corpus.posts.append(post)
    return corpus


def _snippet_content(
    rng: random.Random,
    kind: str,
    previous_solidity_snippets: list[str],
) -> tuple[str, bool, DaspCategory | None, str, str, str]:
    """Produce the text and ground truth of one snippet.

    Returns ``(text, vulnerable, category, language, contract_source,
    mitigated_source)``.
    """
    if kind == "duplicate" and previous_solidity_snippets:
        return rng.choice(previous_solidity_snippets), False, None, "solidity", "", ""
    if kind == "javascript":
        return rng.choice(_JS_SNIPPETS), False, None, "javascript", "", ""
    if kind == "pseudocode":
        return rng.choice(_PSEUDOCODE_SNIPPETS), False, None, "pseudocode", "", ""
    if kind == "config_or_log":
        return rng.choice(_CONFIG_SNIPPETS), False, None, "other", "", ""
    if kind.startswith("vulnerable"):
        category = rng.choice(list(DaspCategory))
        if category is DaspCategory.UNKNOWN_UNKNOWNS:
            category = DaspCategory.REENTRANCY
        instance = generate_vulnerable(rng, category)
        if kind.endswith("contract"):
            text = instance.contract_source
        elif kind.endswith("function"):
            text = instance.function_snippet
        else:
            text = instance.statement_snippet
        return (text, True, category, "solidity",
                instance.contract_source, instance.mitigated_source)
    # benign solidity
    instance = generate_benign(rng)
    if kind.endswith("contract"):
        text = instance.contract_source
    elif kind.endswith("function"):
        text = instance.function_snippet
    else:
        text = instance.statement_snippet
    return text, False, None, "solidity", instance.contract_source, ""
