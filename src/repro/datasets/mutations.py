"""Clone mutation operators (Type I / II / III) used to build clone corpora.

The sanctuary and honeypot generators use these operators to create
contracts that are *clones* of a source snippet in the sense of Roy and
Cordy's taxonomy (Section 2.4 of the paper):

* Type I — layout and comment changes only,
* Type II — additional renaming of identifiers and changed string literals,
* Type III — additional inserted, removed, or modified statements.
"""

from __future__ import annotations

import random
import re

_IDENTIFIER_RE = re.compile(r"\b[A-Za-z_][A-Za-z0-9_]*\b")

#: Names that must never be renamed (language keywords, globals, members).
_PROTECTED_NAMES = frozenset(
    {
        "pragma", "solidity", "contract", "interface", "library", "function",
        "modifier", "event", "struct", "enum", "mapping", "constructor",
        "fallback", "receive", "using", "is", "new", "delete", "emit",
        "return", "returns", "if", "else", "for", "while", "do", "break",
        "continue", "throw", "try", "catch", "assembly", "unchecked",
        "public", "private", "internal", "external", "pure", "view",
        "payable", "constant", "immutable", "virtual", "override",
        "anonymous", "indexed", "storage", "memory", "calldata", "require",
        "assert", "revert", "msg", "sender", "value", "data", "sig", "gas",
        "tx", "origin", "block", "timestamp", "number", "difficulty",
        "coinbase", "now", "this", "super", "selfdestruct", "suicide",
        "keccak256", "sha256", "sha3", "ecrecover", "balance", "transfer",
        "send", "call", "callcode", "delegatecall", "staticcall", "push",
        "pop", "length", "address", "bool", "string", "bytes", "int", "uint",
        "true", "false", "wei", "ether", "finney", "szabo", "seconds",
        "minutes", "hours", "days", "weeks", "years", "var", "_", "abi",
        "encodePacked", "encode", "ok", "success",
    }
)

_COMMENT_POOL = [
    "// TODO: double check this before mainnet",
    "// audited 2021",
    "// see https://ethereum.stackexchange.com",
    "/* withdrawal logic */",
    "// solhint-disable-next-line",
    "// NOTE: gas optimisation pending",
]

_FILLER_STATEMENTS = [
    "uint __unused{n} = 0;",
    "emit Log(msg.sender);",
    "lastCaller = msg.sender;",
    "counter{n} += 1;",
    "require(true);",
]

_RENAME_SUFFIXES = ["_", "V2", "New", "X", "Internal", "Ext", "Impl", "2"]


class CloneMutator:
    """Apply Type I–III clone mutations to Solidity source text."""

    def __init__(self, rng: random.Random | None = None, seed: int | None = None):
        if rng is None:
            rng = random.Random(seed if seed is not None else 0)
        self.rng = rng

    # -- Type I ----------------------------------------------------------------
    def type1(self, source: str) -> str:
        """Layout/comment changes: re-indent, add comments, squeeze blank lines."""
        lines = source.splitlines()
        mutated: list[str] = []
        for line in lines:
            stripped = line.rstrip()
            if not stripped.strip():
                if self.rng.random() < 0.5:
                    continue
            if stripped.strip() and self.rng.random() < 0.15:
                mutated.append(" " * self.rng.choice([0, 2, 4]) + self.rng.choice(_COMMENT_POOL))
            if self.rng.random() < 0.3:
                stripped = stripped.replace("    ", "  ")
            mutated.append(stripped)
        return "\n".join(mutated) + "\n"

    # -- Type II -----------------------------------------------------------------
    def _renamable_identifiers(self, source: str) -> list[str]:
        counts: dict[str, int] = {}
        for match in _IDENTIFIER_RE.finditer(source):
            name = match.group(0)
            if name in _PROTECTED_NAMES or name.startswith("__"):
                continue
            if len(name) < 3:
                continue
            counts[name] = counts.get(name, 0) + 1
        return [name for name, count in counts.items() if count >= 1]

    def type2(self, source: str, max_renames: int = 6) -> str:
        """Rename identifiers and tweak string literals on top of Type I changes."""
        mutated = self.type1(source)
        names = self._renamable_identifiers(mutated)
        self.rng.shuffle(names)
        for name in names[:max_renames]:
            replacement = self._new_name(name)
            mutated = re.sub(rf"\b{re.escape(name)}\b", replacement, mutated)
        # change string literal contents (Type-II difference)
        mutated = re.sub(r'"[^"\n]*"', '"updated message"', mutated) \
            if self.rng.random() < 0.5 else mutated
        return mutated

    def _new_name(self, name: str) -> str:
        suffix = self.rng.choice(_RENAME_SUFFIXES)
        if name[0].isupper():
            return f"{name}{suffix}"
        return f"{name}{suffix}"

    # -- Type III -----------------------------------------------------------------
    def type3(self, source: str, max_edits: int = 3) -> str:
        """Insert/remove statements on top of Type II changes."""
        mutated = self.type2(source)
        lines = mutated.splitlines()
        edits = self.rng.randint(1, max_edits)
        for edit_index in range(edits):
            action = self.rng.choice(["insert", "remove", "insert"])
            body_line_indexes = [
                index for index, line in enumerate(lines)
                if line.strip().endswith(";") and "pragma" not in line and "=" not in line.strip()[:2]
            ]
            if not body_line_indexes:
                break
            position = self.rng.choice(body_line_indexes)
            if action == "insert":
                indent = len(lines[position]) - len(lines[position].lstrip())
                filler = self.rng.choice(_FILLER_STATEMENTS).format(n=self.rng.randint(1, 99))
                lines.insert(position + 1, " " * indent + filler)
            elif action == "remove" and len(body_line_indexes) > 3:
                candidate = lines[position].strip()
                # never remove lines that change control flow drastically
                if candidate.startswith(("require", "if", "for", "while", "return")):
                    continue
                del lines[position]
        return "\n".join(lines) + "\n"

    # -- dispatch --------------------------------------------------------------------
    def mutate(self, source: str, clone_type: int) -> str:
        """Apply the mutation operator for ``clone_type`` in {0, 1, 2, 3}.

        Type 0 returns the source unchanged (an exact copy).
        """
        if clone_type <= 0:
            return source
        if clone_type == 1:
            return self.type1(source)
        if clone_type == 2:
            return self.type2(source)
        return self.type3(source)
