"""Conservative function-boundary splitter for incremental analysis.

:func:`split_source` cuts a Solidity source into per-function token spans
*without* building an AST, mirroring the dispatch rules of
:class:`~repro.solidity.parser.Parser` closely enough that each span can
be (re)parsed standalone and normalized to exactly the sub-fingerprint
the whole-source pipeline would produce.  The artifact layer
(:mod:`repro.core.artifacts`) uses the spans as content-hash keys into a
function-level digest cache, so editing one function of a large source
re-normalizes only that function.

The splitter is deliberately *conservative*: any construct whose token
consumption it cannot mirror exactly — placeholder/error tokens, nested
contracts, loose statements, multi-line declarations, unusual headers —
makes it return ``None``, and the caller falls back to the whole-source
path.  A wrong split can therefore only cost speed, never correctness:
cached digests are keyed by the exact token stream of their span, and a
span is only ever digested from a warning-free parse of that stream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.solidity.lexer import Token, TokenType, tokenize
from repro.solidity.parser import Parser

#: keywords that begin a function-shaped contract part (label ``f``)
_FUNCTION_KEYWORDS = frozenset({"function", "constructor", "fallback", "receive"})

#: header keywords the function-name rule must not swallow
_VISIBILITIES = frozenset({"public", "private", "internal", "external"})
_MUTABILITIES = frozenset({"pure", "view", "payable", "constant"})

#: keywords that end a single-statement skip region (a construct boundary
#: the parser would dispatch on — reaching one mid-declaration means the
#: declaration is stranger than we model, so the split bails)
_BAIL_KEYWORDS = frozenset({
    "contract", "interface", "library", "abstract", "function", "modifier",
    "event", "struct", "enum", "using", "pragma", "import",
    "constructor", "fallback", "receive",
})


@dataclass(frozen=True)
class FunctionSpan:
    """One function/modifier region of a source, keyed by its token stream.

    ``label`` is the normalization label the whole-source pipeline would
    use (``"f"`` for functions and free modifiers, ``"m"`` for modifiers
    inside a contract body); ``construct`` records which parser production
    the span came from (``"function"`` or ``"modifier"``), which is what a
    standalone re-parse of ``text`` must yield.  ``key`` hashes the label
    together with the span's exact token stream, so two spans share a key
    exactly when they normalize identically.
    """

    label: str
    construct: str
    key: str
    text: str
    start_line: int
    end_line: int


@dataclass
class SourceSplit:
    """The function spans of one source, grouped like its fingerprint.

    ``groups`` holds one list of spans per normalized contract group, in
    fingerprint order: each real contract in source order, then (when the
    source has free functions or modifiers) one final group of the free
    spans.  Groups of function-less contracts are empty lists — they still
    contribute an (empty) ``:``-separated segment to the fingerprint text.
    """

    groups: List[List[FunctionSpan]] = field(default_factory=list)

    @property
    def spans(self) -> List[FunctionSpan]:
        """All spans across groups, in fingerprint order."""
        return [span for group in self.groups for span in group]

    def changed_keys(self, base: "SourceSplit") -> set:
        """Span keys of this split that the ``base`` split does not have."""
        base_keys = {span.key for span in base.spans}
        return {span.key for span in self.spans if span.key not in base_keys}


def span_key(label: str, tokens: List[Token]) -> str:
    """The content key of a span: label + exact token stream.

    The first token's newline flag is normalized to ``True`` so the key is
    stable whether the span sat mid-line or at a line start — a standalone
    re-parse prepends a newline, giving the first token that same flag.
    """
    hasher = hashlib.sha256()
    hasher.update(label.encode("ascii"))
    for index, token in enumerate(tokens):
        flag = "1" if (index == 0 or token.preceded_by_newline) else "0"
        hasher.update(f"\x1e{token.type.name}\x1f{token.value}\x1f{flag}"
                      .encode("utf-8", "replace"))
    return hasher.hexdigest()


def changed_line_ranges(base_source: str, source: str) -> Optional[list]:
    """``(start_line, end_line)`` ranges of functions not present in ``base``.

    The delta view the ``changed_only`` analyzer option filters findings
    against: a finding is "changed" when its line falls inside a function
    whose token stream differs from every function of the base version.
    Returns ``None`` when either source cannot be split — callers must
    then treat *everything* as changed.
    """
    base_split = split_source(base_source)
    split = split_source(source)
    if base_split is None or split is None:
        return None
    base_keys = {span.key for span in base_split.spans}
    return [(span.start_line, span.end_line)
            for span in split.spans if span.key not in base_keys]


class _Splitter:
    """One splitting pass over a token stream (see :func:`split_source`)."""

    def __init__(self, source: str):
        self.source = source
        # host a real parser for its token stream and its state-variable
        # lookahead heuristics — the split must agree with the genuine
        # dispatch, not an approximation of it
        self.parser = Parser(source, snippet_mode=True)
        self.tokens = self.parser.tokens
        self.raw_tokens = tokenize(source)
        self.offsets = self._token_offsets()

    def _token_offsets(self) -> List[int]:
        line_starts = [0]
        for index, char in enumerate(self.source):
            if char == "\n":
                line_starts.append(index + 1)
        offsets = []
        for token in self.tokens:
            line = min(token.line - 1, len(line_starts) - 1)
            offsets.append(min(line_starts[line] + token.column - 1,
                               len(self.source)))
        return offsets

    # -- span construction -----------------------------------------------------
    def _make_span(self, label: str, construct: str, start: int, end: int) -> FunctionSpan:
        tokens = self.tokens[start:end]
        return FunctionSpan(
            label=label,
            construct=construct,
            key=span_key(label, tokens),
            text=self.source[self.offsets[start]:self.offsets[end]],
            start_line=tokens[0].line,
            end_line=tokens[-1].line,
        )

    # -- low-level scanners ----------------------------------------------------
    def _eof(self, index: int) -> bool:
        return self.tokens[index].type is TokenType.EOF

    def _scan_braced(self, index: int) -> Optional[int]:
        """Index after the brace block opening at ``index`` (balanced)."""
        depth = 0
        while not self._eof(index):
            token = self.tokens[index]
            if token.is_punct("{"):
                depth += 1
            elif token.is_punct("}"):
                depth -= 1
                if depth == 0:
                    return index + 1
            index += 1
        return None

    def _scan_parens(self, index: int, allow_nested: bool) -> Optional[int]:
        """Index after the paren group opening at ``index``.

        With ``allow_nested`` false the group must be flat — nested parens
        mean function-type parameters or expression arguments whose exact
        consumption we do not model.  Braces or semicolons inside any
        group always bail: the parser's recovery could escape the group.
        """
        depth = 0
        while not self._eof(index):
            token = self.tokens[index]
            if token.is_punct("("):
                depth += 1
                if depth > 1 and not allow_nested:
                    return None
            elif token.is_punct(")"):
                depth -= 1
                if depth == 0:
                    return index + 1
            elif token.is_punct("{") or token.is_punct("}") or token.is_punct(";"):
                return None
            index += 1
        return None

    def _scan_function(self, index: int) -> Optional[int]:
        """Index after a function/constructor/fallback/receive definition.

        Mirrors ``Parser._parse_function`` token for token; any header
        token outside the modeled grammar (including the snippet-mode
        newline termination of body-less headers) bails.
        """
        kind = self.tokens[index].value
        index += 1
        token = self.tokens[index]
        if (kind == "function"
                and token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD)
                and token.value not in _VISIBILITIES
                and token.value not in _MUTABILITIES):
            index += 1  # the function name
        if self.tokens[index].is_punct("("):
            index = self._scan_parens(index, allow_nested=False)
            if index is None:
                return None
        while True:
            token = self.tokens[index]
            if token.type is TokenType.EOF:
                return None
            if token.is_punct("{"):
                return self._scan_braced(index)
            if token.is_punct(";"):
                return index + 1
            if token.type is TokenType.KEYWORD and (
                    token.value in _VISIBILITIES or token.value in _MUTABILITIES
                    or token.value == "virtual"):
                index += 1
            elif token.is_keyword("override") or token.is_keyword("returns"):
                nested = token.value == "override"
                index += 1
                if self.tokens[index].is_punct("("):
                    index = self._scan_parens(index, allow_nested=nested)
                    if index is None:
                        return None
            elif token.type is TokenType.IDENTIFIER:
                index += 1  # a modifier invocation
                if self.tokens[index].is_punct("("):
                    index = self._scan_parens(index, allow_nested=True)
                    if index is None:
                        return None
            else:
                return None

    def _scan_modifier(self, index: int) -> Optional[int]:
        """Index after a modifier definition (mirrors ``_parse_modifier``)."""
        index += 1
        token = self.tokens[index]
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            index += 1  # the modifier name
        if self.tokens[index].is_punct("("):
            index = self._scan_parens(index, allow_nested=False)
            if index is None:
                return None
        while (self.tokens[index].is_keyword("virtual")
               or self.tokens[index].is_keyword("override")):
            index += 1
        if self.tokens[index].is_punct("{"):
            return self._scan_braced(index)
        if self.tokens[index].is_punct(";"):
            return index + 1
        return None

    def _scan_declaration(self, index: int) -> Optional[int]:
        """Index after a single-line, ``;``-terminated declaration.

        Covers the fingerprint-neutral parts (events, error definitions,
        using-for, state variables).  A newline, brace, top-level comma,
        or construct keyword before the ``;`` means the parser's
        consumption could diverge from this scan — bail.
        """
        start = index
        depth = 0
        while not self._eof(index):
            token = self.tokens[index]
            if index > start and token.preceded_by_newline:
                return None
            if token.is_punct("(") or token.is_punct("["):
                depth += 1
            elif token.is_punct(")") or token.is_punct("]"):
                depth -= 1
                if depth < 0:
                    return None
            elif token.is_punct("{") or token.is_punct("}"):
                return None
            elif depth == 0 and token.is_punct(","):
                return None
            elif depth == 0 and token.is_punct(";"):
                return index + 1
            elif (depth == 0 and index > start
                    and token.type is TokenType.KEYWORD
                    and token.value in _BAIL_KEYWORDS):
                return None
            index += 1
        return None

    def _scan_type_container(self, index: int) -> Optional[int]:
        """Index after a struct/enum definition (bounded by its first ``}``)."""
        index += 1
        if self._eof(index):
            return None
        if not self.tokens[index].is_punct("{"):
            index += 1  # the name (the parser consumes any token here)
        if not self.tokens[index].is_punct("{"):
            return None
        index += 1
        while not self._eof(index):
            token = self.tokens[index]
            if token.is_punct("{"):
                return None  # a nested brace inside members: not modeled
            if token.is_punct("}"):
                return index + 1
            index += 1
        return None

    def _scan_pragma(self, index: int) -> Optional[int]:
        """Index after a top-level pragma (mirrors ``_parse_pragma``)."""
        index += 1
        token = self.tokens[index]
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            if token.preceded_by_newline:
                return None  # the parser would swallow the next construct
            index += 1
        while not self._eof(index):
            token = self.tokens[index]
            if token.is_punct(";"):
                return index + 1
            if token.preceded_by_newline:
                return index
            index += 1
        return index

    def _scan_import(self, index: int) -> Optional[int]:
        """Index after a top-level import (mirrors ``_parse_import``)."""
        index += 1
        path_seen = False
        while not self._eof(index):
            token = self.tokens[index]
            if token.is_punct(";"):
                return index + 1
            if token.preceded_by_newline and path_seen:
                return index
            if token.type is TokenType.STRING:
                path_seen = True
            index += 1
        return index

    # -- structure -------------------------------------------------------------
    def _scan_contract(self, index: int) -> Optional[tuple]:
        """``(spans, index_after)`` of one contract definition, or ``None``.

        The header must be the plain shape ``[abstract] kind [Name]
        [is Base((args))…, …] {`` — keyword names or missing braces (both
        of which the tolerant parser accepts with surprising consumption)
        bail.
        """
        if self.tokens[index].is_keyword("abstract"):
            index += 1
            if self.tokens[index].value not in ("contract", "interface", "library") \
                    or self.tokens[index].type is not TokenType.KEYWORD:
                return None
        index += 1  # the contract/interface/library keyword
        if self.tokens[index].type is TokenType.IDENTIFIER:
            index += 1  # the contract name
        elif self.tokens[index].type is TokenType.KEYWORD \
                and not self.tokens[index].is_keyword("is"):
            return None  # the parser would take this keyword as the name
        if self.tokens[index].is_keyword("is"):
            index += 1
            while True:
                token = self.tokens[index]
                if token.type is TokenType.IDENTIFIER:
                    index += 1
                    if self.tokens[index].is_punct("("):
                        index = self._scan_parens(index, allow_nested=True)
                        if index is None:
                            return None
                elif token.type is TokenType.KEYWORD:
                    return None  # keyword base names: not modeled
                if self.tokens[index].is_punct(","):
                    index += 1
                    continue
                break
        if not self.tokens[index].is_punct("{"):
            return None
        index += 1
        spans: List[FunctionSpan] = []
        while not self.tokens[index].is_punct("}"):
            if self._eof(index):
                return None
            result = self._scan_part(index, top_level=False)
            if result is None:
                return None
            span, index = result
            if span is not None:
                spans.append(span)
        return spans, index + 1

    def _scan_part(self, index: int, top_level: bool) -> Optional[tuple]:
        """``(span_or_None, index_after)`` of one contract part, or ``None``.

        Mirrors ``_parse_contract_part_or_statement``: function-shaped
        parts become spans, fingerprint-neutral declarations are skipped,
        and everything the whole-source pipeline would tokenize as a
        loose statement (which this splitter cannot reproduce) bails.
        """
        token = self.tokens[index]
        if token.type is TokenType.KEYWORD and token.value in _FUNCTION_KEYWORDS:
            end = self._scan_function(index)
            if end is None:
                return None
            return self._make_span("f", "function", index, end), end
        if token.is_keyword("modifier"):
            end = self._scan_modifier(index)
            if end is None:
                return None
            label = "f" if top_level else "m"
            return self._make_span(label, "modifier", index, end), end
        if token.is_keyword("event") or token.is_keyword("using"):
            end = self._scan_declaration(index)
            return None if end is None else (None, end)
        if (token.is_keyword("error")
                and self.tokens[index + 1].type is TokenType.IDENTIFIER
                and self.tokens[min(index + 2, len(self.tokens) - 1)].is_punct("(")):
            end = self._scan_declaration(index)
            return None if end is None else (None, end)
        if token.is_keyword("struct") or token.is_keyword("enum"):
            end = self._scan_type_container(index)
            return None if end is None else (None, end)
        if token.type is TokenType.KEYWORD and token.value in (
                "pragma", "import", "contract", "interface", "library"):
            return None  # directives/nested contracts in a body: not modeled
        self.parser.pos = index
        if self.parser._looks_like_state_variable() and (
                not top_level or self.parser._is_simple_declaration_line()):
            end = self._scan_declaration(index)
            return None if end is None else (None, end)
        return None  # a loose statement — it would enter the fingerprint

    def split(self) -> Optional[SourceSplit]:
        if any(token.type in (TokenType.ELLIPSIS, TokenType.ERROR)
               for token in self.raw_tokens):
            return None
        groups: List[List[FunctionSpan]] = []
        free_spans: List[FunctionSpan] = []
        index = 0
        while not self._eof(index):
            token = self.tokens[index]
            if token.is_keyword("pragma"):
                index = self._scan_pragma(index)
            elif token.is_keyword("import"):
                index = self._scan_import(index)
            elif token.type is TokenType.KEYWORD and token.value in (
                    "abstract", "contract", "interface", "library"):
                result = self._scan_contract(index)
                if result is None:
                    return None
                spans, index = result
                groups.append(spans)
            else:
                result = self._scan_part(index, top_level=True)
                if result is None:
                    return None
                span, index = result
                if span is not None:
                    free_spans.append(span)
            if index is None:
                return None
        if free_spans:
            groups.append(free_spans)
        return SourceSplit(groups=groups)


def split_source(source: str) -> Optional[SourceSplit]:
    """Split ``source`` into per-function spans, or ``None`` when unsafe.

    A successful split decomposes the source into function/modifier spans
    plus fingerprint-neutral regions, grouped exactly like the contracts
    of its normalized fingerprint.  ``None`` means the source uses
    constructs the conservative scanner does not model — callers must use
    the whole-source path.
    """
    try:
        return _Splitter(source or "").split()
    except (IndexError, RecursionError):
        return None


__all__ = ["FunctionSpan", "SourceSplit", "changed_line_ranges",
           "span_key", "split_source"]
