"""Tolerant recursive-descent parser for Solidity source code and snippets.

The parser implements the grammar modifications described in Section 4.1 of
the paper:

* **Unnesting of hierarchy** — in snippet mode, contract parts (functions,
  modifiers, events, state variables) and plain statements may appear at the
  top level of the source unit.
* **Statement termination** — a missing ``;`` is accepted when the next
  token starts on a new line.
* **Placeholders** — ``...`` tokens are skipped wherever they appear.

In addition the parser performs panic-mode error recovery: a construct that
cannot be understood is skipped up to a synchronisation point and recorded
as a warning.  Only inputs that do not resemble Solidity at all (too many
unrecoverable errors relative to the amount of parsed content) raise
:class:`~repro.solidity.errors.SolidityParseError`.
"""

from __future__ import annotations

from typing import Optional

from repro.solidity.ast_nodes import (
    ArrayTypeName,
    Assignment,
    BinaryOperation,
    Block,
    BoolLiteral,
    BreakStatement,
    Conditional,
    ContinueStatement,
    ContractDefinition,
    DoWhileStatement,
    ElementaryTypeName,
    ElementaryTypeNameExpression,
    EmitStatement,
    EnumDefinition,
    ErrorDefinition,
    EventDefinition,
    Expression,
    ExpressionStatement,
    ForStatement,
    FunctionCall,
    FunctionDefinition,
    FunctionTypeName,
    Identifier,
    IfStatement,
    ImportDirective,
    IndexAccess,
    InlineAssemblyStatement,
    MappingTypeName,
    MemberAccess,
    ModifierDefinition,
    ModifierInvocation,
    NewExpression,
    Node,
    NumberLiteral,
    Parameter,
    PlaceholderStatement,
    PragmaDirective,
    ReturnStatement,
    RevertStatement,
    SourceUnit,
    StateVariableDeclaration,
    Statement,
    StringLiteral,
    StructDefinition,
    ThrowStatement,
    TryStatement,
    TupleExpression,
    TypeName,
    UnaryOperation,
    UnparsedStatement,
    UserDefinedTypeName,
    UsingForDirective,
    VariableDeclaration,
    VariableDeclarationStatement,
    WhileStatement,
)
from repro.solidity.errors import SolidityParseError, SoliditySyntaxWarning
from repro.solidity.lexer import Token, TokenType, is_elementary_type, tokenize

_VISIBILITIES = {"public", "private", "internal", "external"}
_MUTABILITIES = {"pure", "view", "payable", "constant"}
_UNITS = {"wei", "gwei", "szabo", "finney", "ether",
          "seconds", "minutes", "hours", "days", "weeks", "years"}
_STORAGE_LOCATIONS = {"storage", "memory", "calldata"}

#: Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, ">": 4, "<=": 4, ">=": 4,
    "|": 5,
    "^": 6,
    "&": 7,
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
    "**": 11,
}

_ASSIGNMENT_OPERATORS = {"=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>="}


class Parser:
    """Recursive-descent parser producing :class:`SourceUnit` trees."""

    def __init__(self, source: str, snippet_mode: bool = False):
        self.source = source or ""
        self.snippet_mode = snippet_mode
        self.tokens = [t for t in tokenize(self.source) if t.type is not TokenType.ELLIPSIS]
        self.pos = 0
        self.warnings: list[SoliditySyntaxWarning] = []
        self._error_count = 0
        self._parsed_items = 0

    # -- token helpers -----------------------------------------------------
    def _current(self) -> Token:
        return self.tokens[self.pos]

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at_end(self) -> bool:
        return self._current().type is TokenType.EOF

    def _advance(self) -> Token:
        token = self._current()
        if not self._at_end():
            self.pos += 1
        return token

    def _check_punct(self, value: str) -> bool:
        return self._current().is_punct(value)

    def _check_op(self, value: str) -> bool:
        return self._current().is_op(value)

    def _check_keyword(self, value: str) -> bool:
        return self._current().is_keyword(value)

    def _match_punct(self, value: str) -> bool:
        if self._check_punct(value):
            self._advance()
            return True
        return False

    def _match_op(self, value: str) -> bool:
        if self._check_op(value):
            self._advance()
            return True
        return False

    def _match_keyword(self, value: str) -> bool:
        if self._check_keyword(value):
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> Token:
        if self._check_punct(value):
            return self._advance()
        raise self._error(f"expected {value!r}")

    def _error(self, message: str) -> SolidityParseError:
        token = self._current()
        return SolidityParseError(
            f"{message}, found {token.type.name} {token.value!r}", token.line, token.column
        )

    def _warn(self, message: str) -> None:
        token = self._current()
        self.warnings.append(SoliditySyntaxWarning(message, token.line, token.column))

    def _expect_statement_end(self) -> None:
        """Consume a ``;`` or, in snippet mode, accept a newline boundary."""
        if self._match_punct(";"):
            return
        if self.snippet_mode and (
            self._at_end()
            or self._current().preceded_by_newline
            or self._check_punct("}")
        ):
            return
        raise self._error("expected ';'")

    def _source_span(self, start_token: Token, end_pos: Optional[int] = None) -> str:
        end_pos = self.pos if end_pos is None else end_pos
        if end_pos <= 0:
            return ""
        end_token = self.tokens[min(end_pos, len(self.tokens) - 1)]
        return self._extract_source(start_token, end_token)

    def _extract_source(self, start: Token, end: Token) -> str:
        lines = self.source.splitlines()
        if not lines:
            return ""
        start_line = max(start.line - 1, 0)
        end_line = min(end.line - 1, len(lines) - 1)
        if start_line == end_line:
            return lines[start_line][start.column - 1:end.column - 1].strip()
        parts = [lines[start_line][start.column - 1:]]
        parts.extend(lines[start_line + 1:end_line])
        parts.append(lines[end_line][:end.column - 1])
        return "\n".join(parts).strip()

    def _locate(self, node: Node, start_token: Token) -> Node:
        node.line = start_token.line
        node.column = start_token.column
        if not node.code:
            node.code = self._source_span(start_token)
        return node

    # -- entry point --------------------------------------------------------
    def parse(self) -> SourceUnit:
        """Parse the input and return a :class:`SourceUnit`.

        Raises :class:`SolidityParseError` when the input does not look like
        Solidity (too many unrecoverable errors relative to parsed items).
        """
        unit = SourceUnit(snippet_mode=self.snippet_mode, code=self.source)
        while not self._at_end():
            start_pos = self.pos
            try:
                item = self._parse_top_level_item()
                if item is not None:
                    unit.items.append(item)
                    self._parsed_items += 1
            except SolidityParseError as exc:
                self._error_count += 1
                self.warnings.append(
                    SoliditySyntaxWarning(str(exc), self._current().line, self._current().column)
                )
                self._synchronize(start_pos)
        unit.warnings = self.warnings
        self._check_parsability(unit)
        return unit

    def _check_parsability(self, unit: SourceUnit) -> None:
        meaningful = [item for item in unit.items if not isinstance(item, UnparsedStatement)]
        if not meaningful:
            raise SolidityParseError("input contains no parsable Solidity constructs")
        if self._error_count > max(2, len(meaningful)):
            raise SolidityParseError(
                f"too many syntax errors ({self._error_count}) for "
                f"{len(meaningful)} parsed constructs"
            )

    def _synchronize(self, start_pos: int) -> None:
        """Panic-mode recovery: skip to the next likely construct boundary."""
        if self.pos == start_pos:
            self._advance()
        depth = 0
        while not self._at_end():
            token = self._current()
            if token.is_punct("{"):
                depth += 1
            elif token.is_punct("}"):
                if depth == 0:
                    self._advance()
                    return
                depth -= 1
            elif depth == 0 and token.is_punct(";"):
                self._advance()
                return
            elif depth == 0 and token.type is TokenType.KEYWORD and token.value in {
                "contract", "interface", "library", "function", "modifier", "event",
                "struct", "enum", "pragma", "import", "if", "for", "while", "return",
            } and self.pos != start_pos:
                return
            self._advance()

    # -- top level -----------------------------------------------------------
    def _parse_top_level_item(self) -> Optional[Node]:
        token = self._current()
        if token.type is TokenType.ERROR:
            self._advance()
            self._error_count += 1
            return None
        if token.is_keyword("pragma"):
            return self._parse_pragma()
        if token.is_keyword("import"):
            return self._parse_import()
        if token.is_keyword("abstract") or token.is_keyword("contract") \
                or token.is_keyword("interface") or token.is_keyword("library"):
            return self._parse_contract()
        if not self.snippet_mode:
            raise self._error("expected contract, interface or library definition")
        # snippet mode: contract parts and statements at top level
        return self._parse_contract_part_or_statement(top_level=True)

    def _parse_pragma(self) -> PragmaDirective:
        start = self._advance()  # pragma
        name = ""
        if self._current().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            name = self._advance().value
        value_tokens = []
        while not self._at_end() and not self._check_punct(";"):
            if self._current().preceded_by_newline and self.snippet_mode:
                break
            value_tokens.append(self._advance().value)
        self._match_punct(";")
        node = PragmaDirective(name=name or "solidity", value=" ".join(value_tokens))
        return self._locate(node, start)

    def _parse_import(self) -> ImportDirective:
        start = self._advance()  # import
        path = ""
        symbols: list[str] = []
        while not self._at_end() and not self._check_punct(";"):
            token = self._current()
            if token.preceded_by_newline and self.snippet_mode and path:
                break
            if token.type is TokenType.STRING:
                path = token.value
            elif token.type is TokenType.IDENTIFIER:
                symbols.append(token.value)
            self._advance()
        self._match_punct(";")
        node = ImportDirective(path=path, symbols=symbols)
        return self._locate(node, start)

    # -- contracts -----------------------------------------------------------
    def _parse_contract(self) -> ContractDefinition:
        start = self._current()
        is_abstract = self._match_keyword("abstract")
        kind_token = self._advance()
        kind = kind_token.value if kind_token.value in {"contract", "interface", "library"} else "contract"
        name = ""
        if self._current().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            name = self._advance().value
        bases: list[str] = []
        if self._match_keyword("is"):
            while True:
                if self._current().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                    bases.append(self._advance().value)
                    # optional constructor arguments on the base
                    if self._check_punct("("):
                        self._skip_balanced("(", ")")
                if not self._match_punct(","):
                    break
        contract = ContractDefinition(name=name, kind=kind, base_contracts=bases, is_abstract=is_abstract)
        self._locate(contract, start)
        if not self._match_punct("{"):
            if not self.snippet_mode:
                raise self._error("expected '{' to open contract body")
            self._warn("contract body brace missing; parsing parts until EOF")
        while not self._at_end() and not self._check_punct("}"):
            part_start = self.pos
            try:
                part = self._parse_contract_part_or_statement(top_level=False)
                if part is not None:
                    contract.parts.append(part)
            except SolidityParseError as exc:
                self._error_count += 1
                self.warnings.append(
                    SoliditySyntaxWarning(str(exc), self._current().line, self._current().column)
                )
                self._synchronize(part_start)
        self._match_punct("}")
        contract.code = self._source_span(start)
        return contract

    def _parse_contract_part_or_statement(self, top_level: bool) -> Optional[Node]:
        token = self._current()
        if token.type is TokenType.ERROR:
            self._advance()
            self._error_count += 1
            return None
        if token.is_keyword("function") or token.is_keyword("constructor") \
                or token.is_keyword("fallback") or token.is_keyword("receive"):
            return self._parse_function()
        if token.is_keyword("modifier"):
            return self._parse_modifier()
        if token.is_keyword("event"):
            return self._parse_event()
        if token.is_keyword("error") and self._peek(1).type is TokenType.IDENTIFIER \
                and self._peek(2).is_punct("("):
            return self._parse_error_definition()
        if token.is_keyword("struct"):
            return self._parse_struct()
        if token.is_keyword("enum"):
            return self._parse_enum()
        if token.is_keyword("using"):
            return self._parse_using()
        if token.is_keyword("pragma"):
            return self._parse_pragma()
        if token.is_keyword("import"):
            return self._parse_import()
        if token.is_keyword("contract") or token.is_keyword("interface") or token.is_keyword("library"):
            return self._parse_contract()
        if not top_level and self._looks_like_state_variable():
            return self._parse_state_variable()
        if top_level:
            # snippet mode top level: could be a state variable or a statement
            if self._looks_like_state_variable() and self._is_simple_declaration_line():
                return self._parse_state_variable()
            return self._parse_statement()
        # inside a contract but not a recognised part: tolerate statements
        if self.snippet_mode:
            return self._parse_statement()
        raise self._error("unexpected token in contract body")

    def _is_simple_declaration_line(self) -> bool:
        """Heuristic used at snippet top level to prefer state variables over statements."""
        offset = 0
        depth = 0
        while True:
            token = self._peek(offset)
            if token.type is TokenType.EOF:
                return True
            if token.is_punct("(") or token.is_punct("["):
                depth += 1
            elif token.is_punct(")") or token.is_punct("]"):
                depth -= 1
            elif depth == 0 and token.is_punct(";"):
                return True
            elif depth == 0 and (token.is_punct("{") or token.is_punct("}")):
                return False
            elif token.type is TokenType.KEYWORD and token.value in {"if", "for", "while", "return", "require"}:
                return False
            offset += 1
            if offset > 80:
                return False

    def _looks_like_state_variable(self) -> bool:
        token = self._current()
        if token.is_keyword("mapping"):
            return True
        if token.type is TokenType.IDENTIFIER and is_elementary_type(token.value):
            return self._declaration_follows(1)
        if token.type is TokenType.IDENTIFIER:
            return self._declaration_follows(1)
        return False

    def _declaration_follows(self, offset: int) -> bool:
        """Check whether tokens after a type name look like ``name ... ;`` or ``name = ...``."""
        # skip array suffixes
        while self._peek(offset).is_punct("["):
            depth = 1
            offset += 1
            while depth and self._peek(offset).type is not TokenType.EOF:
                if self._peek(offset).is_punct("["):
                    depth += 1
                elif self._peek(offset).is_punct("]"):
                    depth -= 1
                offset += 1
        # skip visibility / constant keywords
        while self._peek(offset).type is TokenType.KEYWORD and self._peek(offset).value in (
            _VISIBILITIES | {"constant", "immutable", "payable"}
        ):
            offset += 1
        token = self._peek(offset)
        if token.type is not TokenType.IDENTIFIER:
            return False
        nxt = self._peek(offset + 1)
        return nxt.is_punct(";") or nxt.is_op("=") or nxt.type is TokenType.EOF or (
            self.snippet_mode and nxt.preceded_by_newline
        )

    def _parse_state_variable(self) -> StateVariableDeclaration:
        start = self._current()
        type_name = self._parse_type_name()
        visibility = "internal"
        is_constant = False
        is_immutable = False
        while self._current().type is TokenType.KEYWORD:
            word = self._current().value
            if word in _VISIBILITIES:
                visibility = word
                self._advance()
            elif word == "constant":
                is_constant = True
                self._advance()
            elif word == "immutable":
                is_immutable = True
                self._advance()
            elif word in {"override", "virtual", "payable"}:
                self._advance()
            else:
                break
        name = ""
        if self._current().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            name = self._advance().value
        initial_value = None
        if self._match_op("="):
            initial_value = self._parse_expression()
        self._expect_statement_end()
        node = StateVariableDeclaration(
            type_name=type_name, name=name, visibility=visibility,
            is_constant=is_constant, is_immutable=is_immutable, initial_value=initial_value,
        )
        return self._locate(node, start)

    def _parse_using(self) -> UsingForDirective:
        start = self._advance()  # using
        library = ""
        if self._current().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            library = self._advance().value
        type_name = None
        if self._current().is_identifier("for") or self._current().is_keyword("for"):
            self._advance()
            if self._check_op("*"):
                self._advance()
            else:
                type_name = self._parse_type_name()
        self._expect_statement_end()
        node = UsingForDirective(library_name=library, type_name=type_name)
        return self._locate(node, start)

    def _parse_struct(self) -> StructDefinition:
        start = self._advance()  # struct
        name = self._advance().value if not self._check_punct("{") else ""
        members: list[VariableDeclaration] = []
        if self._match_punct("{"):
            while not self._at_end() and not self._check_punct("}"):
                member_start = self._current()
                try:
                    type_name = self._parse_type_name()
                    member_name = ""
                    if self._current().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                        member_name = self._advance().value
                    self._expect_statement_end()
                    member = VariableDeclaration(type_name=type_name, name=member_name)
                    members.append(self._locate(member, member_start))
                except SolidityParseError:
                    self._advance()
            self._match_punct("}")
        node = StructDefinition(name=name, members=members)
        return self._locate(node, start)

    def _parse_enum(self) -> EnumDefinition:
        start = self._advance()  # enum
        name = self._advance().value if not self._check_punct("{") else ""
        members: list[str] = []
        if self._match_punct("{"):
            while not self._at_end() and not self._check_punct("}"):
                if self._current().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                    members.append(self._advance().value)
                elif not self._match_punct(","):
                    self._advance()
            self._match_punct("}")
        node = EnumDefinition(name=name, members=members)
        return self._locate(node, start)

    def _parse_event(self) -> EventDefinition:
        start = self._advance()  # event
        name = ""
        if self._current().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            name = self._advance().value
        parameters = self._parse_parameter_list()
        anonymous = False
        if self._current().is_keyword("anonymous"):
            anonymous = True
            self._advance()
        self._expect_statement_end()
        node = EventDefinition(name=name, parameters=parameters, anonymous=anonymous)
        return self._locate(node, start)

    def _parse_error_definition(self) -> ErrorDefinition:
        start = self._advance()  # error
        name = self._advance().value
        parameters = self._parse_parameter_list()
        self._expect_statement_end()
        node = ErrorDefinition(name=name, parameters=parameters)
        return self._locate(node, start)

    # -- functions and modifiers ----------------------------------------------
    def _parse_function(self) -> FunctionDefinition:
        start = self._current()
        kind_token = self._advance()
        kind = "function"
        name = ""
        if kind_token.value == "constructor":
            kind = "constructor"
        elif kind_token.value == "fallback":
            kind = "fallback"
        elif kind_token.value == "receive":
            kind = "receive"
        else:
            if self._current().type in (TokenType.IDENTIFIER, TokenType.KEYWORD) \
                    and not self._check_punct("("):
                candidate = self._current().value
                if candidate not in _VISIBILITIES and candidate not in _MUTABILITIES:
                    name = self._advance().value
                    if name == "constructor":
                        kind = "constructor"
                        name = ""
        parameters = self._parse_parameter_list() if self._check_punct("(") else []

        visibility = ""
        mutability = ""
        modifiers: list[ModifierInvocation] = []
        return_parameters: list[Parameter] = []
        is_virtual = False
        overrides = False
        while not self._at_end():
            token = self._current()
            if token.type is TokenType.KEYWORD and token.value in _VISIBILITIES:
                visibility = token.value
                self._advance()
            elif token.type is TokenType.KEYWORD and token.value in _MUTABILITIES:
                mutability = token.value
                self._advance()
            elif token.is_keyword("virtual"):
                is_virtual = True
                self._advance()
            elif token.is_keyword("override"):
                overrides = True
                self._advance()
                if self._check_punct("("):
                    self._skip_balanced("(", ")")
            elif token.is_keyword("returns"):
                self._advance()
                return_parameters = self._parse_parameter_list() if self._check_punct("(") else []
            elif token.type is TokenType.IDENTIFIER:
                # a modifier invocation (possibly with arguments)
                mod_start = self._current()
                mod_name = self._advance().value
                arguments: list[Expression] = []
                if self._check_punct("("):
                    arguments = self._parse_call_arguments()[0]
                invocation = ModifierInvocation(name=mod_name, arguments=arguments)
                modifiers.append(self._locate(invocation, mod_start))
            elif token.is_punct("{") or token.is_punct(";"):
                break
            elif self.snippet_mode and (token.preceded_by_newline or token.is_punct("}")):
                break
            else:
                break
        body = None
        if self._check_punct("{"):
            body = self._parse_block()
        else:
            self._match_punct(";")
        node = FunctionDefinition(
            name=name, kind=kind, parameters=parameters,
            return_parameters=return_parameters, visibility=visibility,
            mutability=mutability, modifiers=modifiers, is_virtual=is_virtual,
            overrides=overrides, body=body,
        )
        return self._locate(node, start)

    def _parse_modifier(self) -> ModifierDefinition:
        start = self._advance()  # modifier
        name = ""
        if self._current().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            name = self._advance().value
        parameters = self._parse_parameter_list() if self._check_punct("(") else []
        # skip virtual/override
        while self._current().is_keyword("virtual") or self._current().is_keyword("override"):
            self._advance()
        body = None
        if self._check_punct("{"):
            body = self._parse_block()
        else:
            self._match_punct(";")
        node = ModifierDefinition(name=name, parameters=parameters, body=body)
        return self._locate(node, start)

    def _parse_parameter_list(self) -> list[Parameter]:
        parameters: list[Parameter] = []
        if not self._match_punct("("):
            return parameters
        while not self._at_end() and not self._check_punct(")"):
            param_start = self._current()
            try:
                type_name = self._parse_type_name()
            except SolidityParseError:
                self._advance()
                continue
            storage = ""
            indexed = False
            name = ""
            while self._current().type is TokenType.KEYWORD and self._current().value in (
                _STORAGE_LOCATIONS | {"indexed", "payable"}
            ):
                word = self._advance().value
                if word in _STORAGE_LOCATIONS:
                    storage = word
                elif word == "indexed":
                    indexed = True
            if self._current().type is TokenType.IDENTIFIER:
                name = self._advance().value
            parameter = Parameter(type_name=type_name, name=name, storage_location=storage, indexed=indexed)
            parameters.append(self._locate(parameter, param_start))
            if not self._match_punct(","):
                break
        self._match_punct(")")
        return parameters

    def _skip_balanced(self, open_char: str, close_char: str) -> None:
        if not self._match_punct(open_char):
            return
        depth = 1
        while depth and not self._at_end():
            if self._check_punct(open_char):
                depth += 1
            elif self._check_punct(close_char):
                depth -= 1
            self._advance()

    # -- types -----------------------------------------------------------------
    def _parse_type_name(self) -> TypeName:
        start = self._current()
        base: TypeName
        if self._check_keyword("mapping"):
            self._advance()
            self._expect_punct("(")
            key_type = self._parse_type_name()
            if not self._match_op("=>"):
                # tolerate '=>' written as '=' '>' or missing
                self._match_op("=")
                self._match_op(">")
            value_type = self._parse_type_name()
            self._match_punct(")")
            base = MappingTypeName(name="mapping", key_type=key_type, value_type=value_type)
        elif self._check_keyword("function"):
            self._advance()
            params = self._parse_parameter_list() if self._check_punct("(") else []
            returns: list[Parameter] = []
            while self._current().type is TokenType.KEYWORD and self._current().value in (
                _VISIBILITIES | _MUTABILITIES
            ):
                self._advance()
            if self._match_keyword("returns"):
                returns = self._parse_parameter_list()
            base = FunctionTypeName(name="function", parameters=params, return_parameters=returns)
        else:
            token = self._current()
            if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                raise self._error("expected a type name")
            name = self._advance().value
            # qualified names: Library.Struct
            while self._check_punct(".") and self._peek(1).type is TokenType.IDENTIFIER:
                self._advance()
                name += "." + self._advance().value
            if is_elementary_type(name):
                base = ElementaryTypeName(name=name)
            else:
                base = UserDefinedTypeName(name=name)
        self._locate(base, start)
        # array suffixes
        while self._check_punct("["):
            self._advance()
            length = None
            if not self._check_punct("]"):
                length = self._parse_expression()
            self._match_punct("]")
            base = ArrayTypeName(name=base.name + "[]", base_type=base, length=length)
            self._locate(base, start)
        return base

    # -- statements --------------------------------------------------------------
    def _parse_block(self, unchecked: bool = False) -> Block:
        start = self._current()
        self._expect_punct("{")
        block = Block(unchecked=unchecked)
        while not self._at_end() and not self._check_punct("}"):
            stmt_start = self.pos
            try:
                statement = self._parse_statement()
                if statement is not None:
                    block.statements.append(statement)
            except SolidityParseError as exc:
                self._error_count += 1
                self.warnings.append(
                    SoliditySyntaxWarning(str(exc), self._current().line, self._current().column)
                )
                self._synchronize_statement(stmt_start)
        self._match_punct("}")
        return self._locate(block, start)

    def _synchronize_statement(self, start_pos: int) -> None:
        if self.pos == start_pos:
            self._advance()
        depth = 0
        while not self._at_end():
            token = self._current()
            if token.is_punct("{"):
                depth += 1
            elif token.is_punct("}"):
                if depth == 0:
                    return
                depth -= 1
            elif token.is_punct(";") and depth == 0:
                self._advance()
                return
            self._advance()

    def _parse_statement(self) -> Optional[Statement]:
        token = self._current()
        if token.type is TokenType.ERROR:
            self._advance()
            self._error_count += 1
            return None
        if token.is_punct(";"):
            self._advance()
            return None
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_keyword("unchecked"):
            self._advance()
            return self._parse_block(unchecked=True)
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("return"):
            return self._parse_return()
        if token.is_keyword("emit"):
            return self._parse_emit()
        if token.is_keyword("throw"):
            start = self._advance()
            self._expect_statement_end()
            return self._locate(ThrowStatement(), start)
        if token.is_keyword("break"):
            start = self._advance()
            self._expect_statement_end()
            return self._locate(BreakStatement(), start)
        if token.is_keyword("continue"):
            start = self._advance()
            self._expect_statement_end()
            return self._locate(ContinueStatement(), start)
        if token.is_keyword("assembly"):
            return self._parse_assembly()
        if token.is_keyword("try"):
            return self._parse_try()
        if token.is_identifier("_") and (self._peek(1).is_punct(";") or self._peek(1).type is TokenType.EOF
                                         or self._peek(1).preceded_by_newline or self._peek(1).is_punct("}")):
            start = self._advance()
            self._expect_statement_end()
            return self._locate(PlaceholderStatement(), start)
        if token.is_identifier("revert") and self._peek(1).is_punct("("):
            return self._parse_revert()
        # nested declarations that can show up inside snippet bodies
        if token.is_keyword("function") or token.is_keyword("constructor") or token.is_keyword("modifier"):
            # snippets sometimes paste a function inside another body; tolerate
            if self.snippet_mode:
                nested = self._parse_contract_part_or_statement(top_level=False)
                wrapper = UnparsedStatement(text=getattr(nested, "code", ""))
                wrapper.line, wrapper.column = nested.line, nested.column
                wrapper.code = nested.code
                # carry the declaration through so the CPG can still see it
                wrapper.declaration = nested  # type: ignore[attr-defined]
                return wrapper
            raise self._error("nested function definitions are not allowed")
        if self._looks_like_local_declaration():
            return self._parse_variable_declaration_statement()
        return self._parse_expression_statement()

    def _looks_like_local_declaration(self) -> bool:
        token = self._current()
        if token.is_keyword("mapping") or token.is_keyword("var"):
            return True
        if token.is_punct("(") :
            return False
        if token.type is not TokenType.IDENTIFIER and token.type is not TokenType.KEYWORD:
            return False
        if token.type is TokenType.KEYWORD and token.value not in {"var"}:
            return False
        name = token.value
        offset = 1
        # skip array suffix
        while self._peek(offset).is_punct("["):
            depth = 1
            offset += 1
            while depth and self._peek(offset).type is not TokenType.EOF:
                if self._peek(offset).is_punct("["):
                    depth += 1
                elif self._peek(offset).is_punct("]"):
                    depth -= 1
                offset += 1
        nxt = self._peek(offset)
        if is_elementary_type(name):
            return nxt.type is TokenType.IDENTIFIER or (
                nxt.type is TokenType.KEYWORD and nxt.value in _STORAGE_LOCATIONS
            )
        # user defined type: require "Type name" or "Type storage name"
        if nxt.type is TokenType.KEYWORD and nxt.value in _STORAGE_LOCATIONS:
            return True
        if nxt.type is TokenType.IDENTIFIER:
            after = self._peek(offset + 1)
            return after.is_op("=") or after.is_punct(";") or after.type is TokenType.EOF or (
                self.snippet_mode and after.preceded_by_newline
            )
        return False

    def _parse_variable_declaration_statement(self) -> VariableDeclarationStatement:
        start = self._current()
        if self._check_keyword("var"):
            self._advance()
            type_name: Optional[TypeName] = ElementaryTypeName(name="var")
        else:
            type_name = self._parse_type_name()
        storage = ""
        while self._current().type is TokenType.KEYWORD and self._current().value in _STORAGE_LOCATIONS:
            storage = self._advance().value
        name = ""
        if self._current().type is TokenType.IDENTIFIER:
            name = self._advance().value
        declaration = VariableDeclaration(type_name=type_name, name=name, storage_location=storage)
        self._locate(declaration, start)
        initial_value = None
        if self._match_op("="):
            initial_value = self._parse_expression()
        self._expect_statement_end()
        node = VariableDeclarationStatement(declarations=[declaration], initial_value=initial_value)
        return self._locate(node, start)

    def _parse_if(self) -> IfStatement:
        start = self._advance()  # if
        self._match_punct("(")
        condition = self._parse_expression()
        self._match_punct(")")
        true_body = self._parse_statement()
        false_body = None
        if self._match_keyword("else"):
            false_body = self._parse_statement()
        node = IfStatement(condition=condition, true_body=true_body, false_body=false_body)
        return self._locate(node, start)

    def _parse_while(self) -> WhileStatement:
        start = self._advance()  # while
        self._match_punct("(")
        condition = self._parse_expression()
        self._match_punct(")")
        body = self._parse_statement()
        node = WhileStatement(condition=condition, body=body)
        return self._locate(node, start)

    def _parse_do_while(self) -> DoWhileStatement:
        start = self._advance()  # do
        body = self._parse_statement()
        condition = None
        if self._match_keyword("while"):
            self._match_punct("(")
            condition = self._parse_expression()
            self._match_punct(")")
        self._expect_statement_end()
        node = DoWhileStatement(condition=condition, body=body)
        return self._locate(node, start)

    def _parse_for(self) -> ForStatement:
        start = self._advance()  # for
        self._match_punct("(")
        init: Optional[Statement] = None
        if not self._check_punct(";"):
            if self._looks_like_local_declaration():
                init = self._parse_for_init_declaration()
            else:
                expr = self._parse_expression()
                init = ExpressionStatement(expression=expr, line=expr.line, column=expr.column, code=expr.code)
        self._match_punct(";")
        condition = None
        if not self._check_punct(";"):
            condition = self._parse_expression()
        self._match_punct(";")
        update = None
        if not self._check_punct(")"):
            update = self._parse_expression()
        self._match_punct(")")
        body = self._parse_statement()
        node = ForStatement(init=init, condition=condition, update=update, body=body)
        return self._locate(node, start)

    def _parse_for_init_declaration(self) -> VariableDeclarationStatement:
        """Like :meth:`_parse_variable_declaration_statement` but stops before ``;``."""
        start = self._current()
        if self._check_keyword("var"):
            self._advance()
            type_name: Optional[TypeName] = ElementaryTypeName(name="var")
        else:
            type_name = self._parse_type_name()
        storage = ""
        while self._current().type is TokenType.KEYWORD and self._current().value in _STORAGE_LOCATIONS:
            storage = self._advance().value
        name = ""
        if self._current().type is TokenType.IDENTIFIER:
            name = self._advance().value
        declaration = VariableDeclaration(type_name=type_name, name=name, storage_location=storage)
        self._locate(declaration, start)
        initial_value = None
        if self._match_op("="):
            initial_value = self._parse_expression()
        node = VariableDeclarationStatement(declarations=[declaration], initial_value=initial_value)
        return self._locate(node, start)

    def _parse_return(self) -> ReturnStatement:
        start = self._advance()  # return
        expression = None
        if not self._check_punct(";") and not self._check_punct("}") and not self._at_end() \
                and not (self.snippet_mode and self._current().preceded_by_newline):
            expression = self._parse_expression()
        self._expect_statement_end()
        node = ReturnStatement(expression=expression)
        return self._locate(node, start)

    def _parse_emit(self) -> EmitStatement:
        start = self._advance()  # emit
        expression = self._parse_expression()
        self._expect_statement_end()
        call = expression if isinstance(expression, FunctionCall) else FunctionCall(
            callee=expression, line=expression.line, column=expression.column, code=expression.code,
        )
        node = EmitStatement(call=call)
        return self._locate(node, start)

    def _parse_revert(self) -> RevertStatement:
        start = self._current()
        expression = self._parse_expression()
        self._expect_statement_end()
        call = expression if isinstance(expression, FunctionCall) else FunctionCall(
            callee=expression, line=expression.line, column=expression.column, code=expression.code,
        )
        node = RevertStatement(call=call)
        return self._locate(node, start)

    def _parse_assembly(self) -> InlineAssemblyStatement:
        start = self._advance()  # assembly
        if self._current().type is TokenType.STRING:
            self._advance()
        body_tokens: list[str] = []
        if self._check_punct("{"):
            depth = 0
            while not self._at_end():
                token = self._current()
                if token.is_punct("{"):
                    depth += 1
                elif token.is_punct("}"):
                    depth -= 1
                    if depth == 0:
                        self._advance()
                        break
                body_tokens.append(token.value)
                self._advance()
        node = InlineAssemblyStatement(body_text=" ".join(body_tokens))
        return self._locate(node, start)

    def _parse_try(self) -> TryStatement:
        start = self._advance()  # try
        expression = self._parse_expression()
        if self._match_keyword("returns"):
            self._parse_parameter_list()
        body = self._parse_block() if self._check_punct("{") else Block()
        catch_bodies: list[Block] = []
        while self._match_keyword("catch"):
            if self._current().type is TokenType.IDENTIFIER:
                self._advance()
            if self._check_punct("("):
                self._parse_parameter_list()
            if self._check_punct("{"):
                catch_bodies.append(self._parse_block())
        node = TryStatement(expression=expression, body=body, catch_bodies=catch_bodies)
        return self._locate(node, start)

    def _parse_expression_statement(self) -> ExpressionStatement:
        start = self._current()
        expression = self._parse_expression()
        self._expect_statement_end()
        node = ExpressionStatement(expression=expression)
        return self._locate(node, start)

    # -- expressions ----------------------------------------------------------------
    def _parse_expression(self) -> Expression:
        return self._parse_assignment_expression()

    def _parse_assignment_expression(self) -> Expression:
        left = self._parse_conditional()
        token = self._current()
        if token.type is TokenType.OPERATOR and token.value in _ASSIGNMENT_OPERATORS:
            start = self._advance()
            right = self._parse_assignment_expression()
            node = Assignment(operator=start.value, left=left, right=right)
            node.line, node.column = left.line, left.column
            node.code = f"{left.code} {start.value} {right.code}".strip()
            return node
        return left

    def _parse_conditional(self) -> Expression:
        condition = self._parse_binary(0)
        if self._check_op("?"):
            self._advance()
            true_expression = self._parse_expression()
            self._match_punct(":")
            false_expression = self._parse_expression()
            node = Conditional(
                condition=condition, true_expression=true_expression, false_expression=false_expression,
            )
            node.line, node.column, node.code = condition.line, condition.column, condition.code
            return node
        return condition

    def _parse_binary(self, min_precedence: int) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._current()
            if token.type is not TokenType.OPERATOR:
                break
            precedence = _BINARY_PRECEDENCE.get(token.value)
            if precedence is None or precedence < min_precedence:
                break
            operator = self._advance().value
            right = self._parse_binary(precedence + 1)
            node = BinaryOperation(operator=operator, left=left, right=right)
            node.line, node.column = left.line, left.column
            node.code = f"{left.code} {operator} {right.code}".strip()
            left = node
        return left

    def _parse_unary(self) -> Expression:
        token = self._current()
        if token.type is TokenType.OPERATOR and token.value in {"!", "-", "+", "~", "++", "--"}:
            start = self._advance()
            operand = self._parse_unary()
            node = UnaryOperation(operator=start.value, operand=operand, prefix=True)
            node.line, node.column = start.line, start.column
            node.code = f"{start.value}{operand.code}"
            return node
        if token.is_keyword("delete"):
            start = self._advance()
            operand = self._parse_unary()
            node = UnaryOperation(operator="delete", operand=operand, prefix=True)
            node.line, node.column = start.line, start.column
            node.code = f"delete {operand.code}"
            return node
        if token.is_keyword("new"):
            start = self._advance()
            type_name = self._parse_type_name()
            node = NewExpression(type_name=type_name)
            self._locate(node, start)
            node.code = f"new {type_name.name}"
            return self._parse_postfix(node)
        return self._parse_postfix(self._parse_primary())

    def _parse_postfix(self, expression: Expression) -> Expression:
        while True:
            token = self._current()
            if token.is_punct("."):
                self._advance()
                member = ""
                if self._current().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                    member = self._advance().value
                node = MemberAccess(base=expression, member=member)
                node.line, node.column = expression.line, expression.column
                node.code = f"{expression.code}.{member}"
                expression = node
            elif token.is_punct("["):
                self._advance()
                index = None
                if not self._check_punct("]"):
                    index = self._parse_expression()
                self._match_punct("]")
                node = IndexAccess(base=expression, index=index)
                node.line, node.column = expression.line, expression.column
                index_code = index.code if index is not None else ""
                node.code = f"{expression.code}[{index_code}]"
                expression = node
            elif token.is_punct("{") and self._looks_like_call_options():
                options = self._parse_call_options()
                if self._check_punct("("):
                    arguments, names = self._parse_call_arguments()
                else:
                    arguments, names = [], []
                node = FunctionCall(
                    callee=expression, arguments=arguments, argument_names=names, call_options=options,
                )
                node.line, node.column = expression.line, expression.column
                node.code = f"{expression.code}{{...}}(...)"
                expression = node
            elif token.is_punct("("):
                arguments, names = self._parse_call_arguments()
                node = FunctionCall(callee=expression, arguments=arguments, argument_names=names)
                node.line, node.column = expression.line, expression.column
                argument_code = ", ".join(a.code for a in arguments)
                node.code = f"{expression.code}({argument_code})"
                expression = node
            elif token.type is TokenType.OPERATOR and token.value in {"++", "--"}:
                self._advance()
                node = UnaryOperation(operator=token.value, operand=expression, prefix=False)
                node.line, node.column = expression.line, expression.column
                node.code = f"{expression.code}{token.value}"
                expression = node
            else:
                break
        return expression

    def _looks_like_call_options(self) -> bool:
        """Distinguish ``call{value: x}(...)`` from a block statement."""
        if not self._check_punct("{"):
            return False
        offset = 1
        token = self._peek(offset)
        if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            return False
        if token.value not in {"value", "gas", "salt"}:
            return False
        return self._peek(offset + 1).is_punct(":")

    def _parse_call_options(self) -> dict[str, Expression]:
        options: dict[str, Expression] = {}
        self._expect_punct("{")
        while not self._at_end() and not self._check_punct("}"):
            if self._current().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                key = self._advance().value
                self._match_punct(":")
                options[key] = self._parse_expression()
            if not self._match_punct(","):
                break
        self._match_punct("}")
        return options

    def _parse_call_arguments(self) -> tuple[list[Expression], list[str]]:
        arguments: list[Expression] = []
        names: list[str] = []
        self._expect_punct("(")
        if self._check_punct("{"):
            # named arguments: f({a: 1, b: 2})
            self._advance()
            while not self._at_end() and not self._check_punct("}"):
                if self._current().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                    names.append(self._advance().value)
                    self._match_punct(":")
                    arguments.append(self._parse_expression())
                if not self._match_punct(","):
                    break
            self._match_punct("}")
        else:
            while not self._at_end() and not self._check_punct(")"):
                arguments.append(self._parse_expression())
                names.append("")
                if not self._match_punct(","):
                    break
        self._match_punct(")")
        return arguments, names

    def _parse_primary(self) -> Expression:
        token = self._current()
        if token.type is TokenType.NUMBER or token.type is TokenType.HEX_LITERAL:
            self._advance()
            unit = ""
            nxt = self._current()
            if nxt.type is TokenType.IDENTIFIER and nxt.value in _UNITS:
                unit = self._advance().value
            node = NumberLiteral(value=token.value, unit=unit)
            node.line, node.column = token.line, token.column
            node.code = token.value + ((" " + unit) if unit else "")
            return node
        if token.type is TokenType.STRING:
            self._advance()
            node = StringLiteral(value=token.value)
            node.line, node.column = token.line, token.column
            node.code = f'"{token.value}"'
            return node
        if token.is_keyword("true") or token.is_keyword("false"):
            self._advance()
            node = BoolLiteral(value=token.value == "true")
            node.line, node.column = token.line, token.column
            node.code = token.value
            return node
        if token.is_punct("("):
            start = self._advance()
            components: list[Optional[Expression]] = []
            while not self._at_end() and not self._check_punct(")"):
                if self._check_punct(","):
                    components.append(None)
                    self._advance()
                    continue
                # tuple destructuring declarations: ``(bool ok, ) = ...`` —
                # skip the type token and keep the declared name as reference
                current = self._current()
                nxt = self._peek(1)
                if current.type in (TokenType.IDENTIFIER, TokenType.KEYWORD) \
                        and is_elementary_type(current.value) \
                        and nxt.type is TokenType.IDENTIFIER:
                    self._advance()
                components.append(self._parse_expression())
                if not self._match_punct(","):
                    break
            self._match_punct(")")
            if len(components) == 1 and components[0] is not None:
                return components[0]
            node = TupleExpression(components=components)
            node.line, node.column = start.line, start.column
            node.code = "(" + ", ".join(c.code if c else "" for c in components) + ")"
            return node
        if token.is_punct("["):
            start = self._advance()
            elements: list[Optional[Expression]] = []
            while not self._at_end() and not self._check_punct("]"):
                elements.append(self._parse_expression())
                if not self._match_punct(","):
                    break
            self._match_punct("]")
            node = TupleExpression(components=elements)
            node.line, node.column = start.line, start.column
            node.code = "[" + ", ".join(e.code if e else "" for e in elements) + "]"
            return node
        if token.type is TokenType.IDENTIFIER and is_elementary_type(token.value) \
                and self._peek(1).is_punct("("):
            self._advance()
            type_expr = ElementaryTypeNameExpression(type_name=ElementaryTypeName(name=token.value))
            type_expr.line, type_expr.column, type_expr.code = token.line, token.column, token.value
            return type_expr
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            # keywords usable as expressions: this, payable(..), type(..), etc.
            self._advance()
            node = Identifier(name=token.value)
            node.line, node.column = token.line, token.column
            node.code = token.value
            return node
        raise self._error("expected an expression")


def parse(source: str, snippet_mode: bool = False) -> SourceUnit:
    """Parse a complete Solidity source file (or snippet when requested)."""
    return Parser(source, snippet_mode=snippet_mode).parse()


def parse_snippet(source: str) -> SourceUnit:
    """Parse an incomplete Solidity snippet using the modified grammar rules."""
    return Parser(source, snippet_mode=True).parse()
