"""Tolerant Solidity lexer.

The lexer turns source text into a flat stream of :class:`Token` objects.
It is intentionally forgiving: unknown characters become ``ERROR`` tokens
instead of raising, and the ``...`` placeholder frequently found in Q&A
snippets is lexed as a dedicated ``ELLIPSIS`` token that the parser skips
(Section 4.1 of the paper, "Placeholders").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TokenType(enum.Enum):
    """Categories of lexical tokens."""

    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    HEX_LITERAL = "hex"
    PUNCTUATION = "punctuation"
    OPERATOR = "operator"
    ELLIPSIS = "ellipsis"
    COMMENT = "comment"
    NEWLINE = "newline"
    ERROR = "error"
    EOF = "eof"


#: Words that the lexer classifies as keywords.  Type names such as
#: ``uint256`` are recognised separately by the parser so they can still be
#: used as identifiers in tolerant mode.
KEYWORDS = frozenset(
    {
        "pragma", "import", "contract", "interface", "library", "abstract",
        "function", "modifier", "event", "struct", "enum", "mapping", "using",
        "constructor", "fallback", "receive", "is", "new", "delete", "emit",
        "return", "returns", "if", "else", "for", "while", "do", "break",
        "continue", "throw", "try", "catch", "assembly", "unchecked",
        "public", "private", "internal", "external", "pure", "view",
        "payable", "constant", "immutable", "virtual", "override",
        "anonymous", "indexed", "storage", "memory", "calldata", "error",
        "true", "false", "var", "let",
    }
)

#: Multi-character operators ordered by length so that maximal munch works.
_OPERATORS = [
    ">>>=", "<<=", ">>=", "**=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=",
    "%=", "|=", "&=", "^=", "<<", ">>", "**", "=>", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~", "?",
]

_PUNCTUATION = {"(", ")", "{", "}", "[", "]", ";", ",", ":", "."}

#: Elementary type name prefixes; ``uintN``/``intN``/``bytesN`` are matched
#: by :func:`is_elementary_type`.
_ELEMENTARY_TYPES = {"address", "bool", "string", "bytes", "byte", "fixed", "ufixed", "var"}


def is_elementary_type(name: str) -> bool:
    """Return ``True`` when ``name`` is an elementary Solidity type name."""
    if name in _ELEMENTARY_TYPES:
        return True
    for prefix in ("uint", "int", "bytes", "fixed", "ufixed"):
        if name.startswith(prefix):
            suffix = name[len(prefix):]
            if suffix == "" or suffix.isdigit():
                return True
    return False


@dataclass
class Token:
    """A single lexical token with its source location."""

    type: TokenType
    value: str
    line: int
    column: int
    preceded_by_newline: bool = field(default=False)

    def is_punct(self, value: str) -> bool:
        return self.type is TokenType.PUNCTUATION and self.value == value

    def is_op(self, value: str) -> bool:
        return self.type is TokenType.OPERATOR and self.value == value

    def is_keyword(self, value: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == value

    def is_identifier(self, value: str | None = None) -> bool:
        if self.type is not TokenType.IDENTIFIER:
            return False
        return value is None or self.value == value

    def __repr__(self):
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Convert Solidity source text into a list of tokens."""

    def __init__(self, source: str):
        self.source = source or ""
        self.pos = 0
        self.line = 1
        self.column = 1
        self.tokens: list[Token] = []
        self._pending_newline = False

    # -- low level helpers -------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos:self.pos + count]
        for char in text:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _emit(self, token_type: TokenType, value: str, line: int, column: int) -> None:
        token = Token(token_type, value, line, column, preceded_by_newline=self._pending_newline)
        self._pending_newline = False
        self.tokens.append(token)

    # -- scanning ----------------------------------------------------------
    def tokenize(self) -> list[Token]:
        """Scan the whole input and return the token list (EOF-terminated)."""
        while self.pos < len(self.source):
            char = self._peek()
            if char == "\n":
                self._advance()
                self._pending_newline = True
                continue
            if char in " \t\r\f\v":
                self._advance()
                continue
            if char == "/" and self._peek(1) == "/":
                self._scan_line_comment()
                continue
            if char == "/" and self._peek(1) == "*":
                self._scan_block_comment()
                continue
            if char in "\"'":
                self._scan_string(char)
                continue
            if char.isdigit():
                self._scan_number()
                continue
            if char.isalpha() or char == "_" or char == "$":
                self._scan_word()
                continue
            if char in _PUNCTUATION or not char.isascii():
                self._scan_punct_or_operator()
                continue
            self._scan_punct_or_operator()
        self._emit(TokenType.EOF, "", self.line, self.column)
        return self.tokens

    def _scan_line_comment(self) -> None:
        start_line, start_col = self.line, self.column
        text = []
        while self.pos < len(self.source) and self._peek() != "\n":
            text.append(self._advance())
        self._emit(TokenType.COMMENT, "".join(text), start_line, start_col)
        # keep the comment token out of the parser stream, but remember the
        # newline that terminates it
        self.tokens.pop()

    def _scan_block_comment(self) -> None:
        start_line, start_col = self.line, self.column
        text = [self._advance(2)]
        while self.pos < len(self.source):
            if self._peek() == "*" and self._peek(1) == "/":
                text.append(self._advance(2))
                break
            text.append(self._advance())
        self._emit(TokenType.COMMENT, "".join(text), start_line, start_col)
        self.tokens.pop()

    def _scan_string(self, quote: str) -> None:
        start_line, start_col = self.line, self.column
        self._advance()
        chars = []
        while self.pos < len(self.source):
            char = self._peek()
            if char == "\\":
                chars.append(self._advance(2))
                continue
            if char == quote:
                self._advance()
                break
            if char == "\n":
                # unterminated string: stop at the newline, tolerant mode
                break
            chars.append(self._advance())
        self._emit(TokenType.STRING, "".join(chars), start_line, start_col)

    def _scan_number(self) -> None:
        start_line, start_col = self.line, self.column
        chars = []
        if self._peek() == "0" and self._peek(1) in "xX":
            chars.append(self._advance(2))
            while self.pos < len(self.source) and (self._peek().isalnum() or self._peek() == "_"):
                chars.append(self._advance())
            self._emit(TokenType.HEX_LITERAL, "".join(chars), start_line, start_col)
            return
        seen_dot = False
        seen_exp = False
        while self.pos < len(self.source):
            char = self._peek()
            if char.isdigit() or char == "_":
                chars.append(self._advance())
            elif char == "." and not seen_dot and self._peek(1).isdigit():
                seen_dot = True
                chars.append(self._advance())
            elif char in "eE" and not seen_exp and (self._peek(1).isdigit() or self._peek(1) in "+-"):
                seen_exp = True
                chars.append(self._advance())
                if self._peek() in "+-":
                    chars.append(self._advance())
            else:
                break
        self._emit(TokenType.NUMBER, "".join(chars), start_line, start_col)

    def _scan_word(self) -> None:
        start_line, start_col = self.line, self.column
        chars = []
        while self.pos < len(self.source):
            char = self._peek()
            if char.isalnum() or char in "_$":
                chars.append(self._advance())
            else:
                break
        word = "".join(chars)
        if word in KEYWORDS:
            self._emit(TokenType.KEYWORD, word, start_line, start_col)
        else:
            self._emit(TokenType.IDENTIFIER, word, start_line, start_col)

    def _scan_punct_or_operator(self) -> None:
        start_line, start_col = self.line, self.column
        for operator in _OPERATORS:
            if self.source.startswith(operator, self.pos):
                self._advance(len(operator))
                if operator == "...":
                    self._emit(TokenType.ELLIPSIS, operator, start_line, start_col)
                else:
                    self._emit(TokenType.OPERATOR, operator, start_line, start_col)
                return
        char = self._advance()
        if char in _PUNCTUATION:
            self._emit(TokenType.PUNCTUATION, char, start_line, start_col)
        else:
            self._emit(TokenType.ERROR, char, start_line, start_col)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` and return the token list."""
    return Lexer(source).tokenize()
