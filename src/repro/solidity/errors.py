"""Errors and warnings raised by the Solidity parsing substrate."""


class SolidityParseError(Exception):
    """Raised when a source unit or snippet cannot be parsed.

    The tolerant parser only raises this error when the input does not
    resemble Solidity at all (e.g. prose, JavaScript, or pseudo-code with a
    few Solidity keywords sprinkled in).  Recoverable problems inside
    otherwise valid snippets are collected as warnings on the resulting
    :class:`~repro.solidity.ast_nodes.SourceUnit` instead.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SoliditySyntaxWarning:
    """A recoverable syntax problem encountered while parsing a snippet."""

    def __init__(self, message, line, column):
        self.message = message
        self.line = line
        self.column = column

    def __repr__(self):
        return f"SoliditySyntaxWarning({self.message!r}, line={self.line}, column={self.column})"
