"""Abstract syntax tree node definitions for the Solidity substrate.

Every node records its source span (``line``/``column`` and the raw ``code``
excerpt) so that downstream consumers — the CPG frontend and the clone
detector — can report findings at precise locations and reconstruct the
normalized token stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class Node:
    """Base class of every AST node."""

    line: int = 0
    column: int = 0
    code: str = ""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes.

        The default implementation inspects dataclass fields and yields any
        value (or list element) that is itself a :class:`Node`.
        """
        for value in vars(self).values():
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    @property
    def node_type(self) -> str:
        return type(self).__name__


# ---------------------------------------------------------------------------
# Type names
# ---------------------------------------------------------------------------


@dataclass
class TypeName(Node):
    """Base class for type annotations."""

    name: str = ""


@dataclass
class ElementaryTypeName(TypeName):
    """Built-in value types such as ``uint256``, ``address`` or ``bool``."""


@dataclass
class UserDefinedTypeName(TypeName):
    """A reference to a contract, struct, or enum type."""


@dataclass
class MappingTypeName(TypeName):
    """``mapping(keyType => valueType)``."""

    key_type: Optional[TypeName] = None
    value_type: Optional[TypeName] = None


@dataclass
class ArrayTypeName(TypeName):
    """``T[]`` or ``T[n]``."""

    base_type: Optional[TypeName] = None
    length: Optional["Expression"] = None


@dataclass
class FunctionTypeName(TypeName):
    """``function (...) returns (...)`` used as a type."""

    parameters: list["Parameter"] = field(default_factory=list)
    return_parameters: list["Parameter"] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expression(Node):
    """Base class for expressions."""


@dataclass
class Identifier(Expression):
    name: str = ""


@dataclass
class MemberAccess(Expression):
    """``base.member`` — e.g. ``msg.sender`` or ``token.balanceOf``."""

    base: Optional[Expression] = None
    member: str = ""


@dataclass
class IndexAccess(Expression):
    """``base[index]``."""

    base: Optional[Expression] = None
    index: Optional[Expression] = None


@dataclass
class FunctionCall(Expression):
    """A call expression, including calls with ``{value: .., gas: ..}``."""

    callee: Optional[Expression] = None
    arguments: list[Expression] = field(default_factory=list)
    argument_names: list[str] = field(default_factory=list)
    call_options: dict[str, Expression] = field(default_factory=dict)

    def children(self) -> Iterator[Node]:
        if self.callee is not None:
            yield self.callee
        yield from self.arguments
        yield from self.call_options.values()


@dataclass
class NewExpression(Expression):
    """``new ContractName`` / ``new uint[](n)`` target of a creation call."""

    type_name: Optional[TypeName] = None


@dataclass
class BinaryOperation(Expression):
    operator: str = ""
    left: Optional[Expression] = None
    right: Optional[Expression] = None


@dataclass
class UnaryOperation(Expression):
    operator: str = ""
    operand: Optional[Expression] = None
    prefix: bool = True


@dataclass
class Assignment(Expression):
    """Assignments including compound forms (``+=``, ``-=``, ...)."""

    operator: str = "="
    left: Optional[Expression] = None
    right: Optional[Expression] = None


@dataclass
class Conditional(Expression):
    """The ternary operator ``cond ? a : b``."""

    condition: Optional[Expression] = None
    true_expression: Optional[Expression] = None
    false_expression: Optional[Expression] = None


@dataclass
class TupleExpression(Expression):
    components: list[Optional[Expression]] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        for component in self.components:
            if component is not None:
                yield component


@dataclass
class NumberLiteral(Expression):
    value: str = "0"
    unit: str = ""

    def numeric_value(self) -> float:
        """Best-effort numeric value (hex and underscores supported)."""
        text = self.value.replace("_", "")
        try:
            if text.lower().startswith("0x"):
                return float(int(text, 16))
            return float(text)
        except ValueError:
            return 0.0


@dataclass
class StringLiteral(Expression):
    value: str = ""


@dataclass
class BoolLiteral(Expression):
    value: bool = False


@dataclass
class ElementaryTypeNameExpression(Expression):
    """A type used as an expression, e.g. ``address(0)`` or ``uint(x)``."""

    type_name: Optional[TypeName] = None


# ---------------------------------------------------------------------------
# Declarations and parameters
# ---------------------------------------------------------------------------


@dataclass
class Parameter(Node):
    """A function/modifier/event parameter or return value."""

    type_name: Optional[TypeName] = None
    name: str = ""
    storage_location: str = ""
    indexed: bool = False


@dataclass
class VariableDeclaration(Node):
    """A local variable declaration (inside a statement)."""

    type_name: Optional[TypeName] = None
    name: str = ""
    storage_location: str = ""


@dataclass
class StateVariableDeclaration(Node):
    """A contract-level state variable."""

    type_name: Optional[TypeName] = None
    name: str = ""
    visibility: str = "internal"
    is_constant: bool = False
    is_immutable: bool = False
    initial_value: Optional[Expression] = None


@dataclass
class ModifierInvocation(Node):
    """Application of a modifier (or base-constructor call) on a function."""

    name: str = ""
    arguments: list[Expression] = field(default_factory=list)


@dataclass
class FunctionDefinition(Node):
    """A function, constructor, fallback, or receive definition."""

    name: str = ""
    kind: str = "function"  # function | constructor | fallback | receive
    parameters: list[Parameter] = field(default_factory=list)
    return_parameters: list[Parameter] = field(default_factory=list)
    visibility: str = ""
    mutability: str = ""
    modifiers: list[ModifierInvocation] = field(default_factory=list)
    is_virtual: bool = False
    overrides: bool = False
    body: Optional["Block"] = None

    @property
    def is_constructor(self) -> bool:
        return self.kind == "constructor"

    @property
    def is_default_function(self) -> bool:
        """True for fallback/receive/unnamed functions (the paper's "default function")."""
        return self.kind in {"fallback", "receive"} or (self.kind == "function" and not self.name)


@dataclass
class ModifierDefinition(Node):
    name: str = ""
    parameters: list[Parameter] = field(default_factory=list)
    body: Optional["Block"] = None


@dataclass
class EventDefinition(Node):
    name: str = ""
    parameters: list[Parameter] = field(default_factory=list)
    anonymous: bool = False


@dataclass
class ErrorDefinition(Node):
    name: str = ""
    parameters: list[Parameter] = field(default_factory=list)


@dataclass
class StructDefinition(Node):
    name: str = ""
    members: list[VariableDeclaration] = field(default_factory=list)


@dataclass
class EnumDefinition(Node):
    name: str = ""
    members: list[str] = field(default_factory=list)


@dataclass
class UsingForDirective(Node):
    library_name: str = ""
    type_name: Optional[TypeName] = None


@dataclass
class ContractDefinition(Node):
    """A contract, interface, or library definition."""

    name: str = ""
    kind: str = "contract"  # contract | interface | library
    base_contracts: list[str] = field(default_factory=list)
    parts: list[Node] = field(default_factory=list)
    is_abstract: bool = False

    def functions(self) -> list[FunctionDefinition]:
        return [part for part in self.parts if isinstance(part, FunctionDefinition)]

    def state_variables(self) -> list[StateVariableDeclaration]:
        return [part for part in self.parts if isinstance(part, StateVariableDeclaration)]

    def modifiers(self) -> list[ModifierDefinition]:
        return [part for part in self.parts if isinstance(part, ModifierDefinition)]


@dataclass
class PragmaDirective(Node):
    name: str = "solidity"
    value: str = ""


@dataclass
class ImportDirective(Node):
    path: str = ""
    symbols: list[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Statement(Node):
    """Base class for statements."""


@dataclass
class Block(Statement):
    statements: list[Statement] = field(default_factory=list)
    unchecked: bool = False


@dataclass
class ExpressionStatement(Statement):
    expression: Optional[Expression] = None


@dataclass
class VariableDeclarationStatement(Statement):
    declarations: list[VariableDeclaration] = field(default_factory=list)
    initial_value: Optional[Expression] = None


@dataclass
class IfStatement(Statement):
    condition: Optional[Expression] = None
    true_body: Optional[Statement] = None
    false_body: Optional[Statement] = None


@dataclass
class WhileStatement(Statement):
    condition: Optional[Expression] = None
    body: Optional[Statement] = None


@dataclass
class DoWhileStatement(Statement):
    condition: Optional[Expression] = None
    body: Optional[Statement] = None


@dataclass
class ForStatement(Statement):
    init: Optional[Statement] = None
    condition: Optional[Expression] = None
    update: Optional[Expression] = None
    body: Optional[Statement] = None


@dataclass
class ReturnStatement(Statement):
    expression: Optional[Expression] = None


@dataclass
class EmitStatement(Statement):
    call: Optional[FunctionCall] = None


@dataclass
class RevertStatement(Statement):
    """``revert(...)`` or ``revert CustomError(...)`` as a statement."""

    call: Optional[FunctionCall] = None


@dataclass
class ThrowStatement(Statement):
    """The legacy ``throw;`` statement (always rolls back)."""


@dataclass
class BreakStatement(Statement):
    pass


@dataclass
class ContinueStatement(Statement):
    pass


@dataclass
class PlaceholderStatement(Statement):
    """The ``_;`` placeholder inside a modifier body."""


@dataclass
class InlineAssemblyStatement(Statement):
    """An ``assembly { ... }`` block kept as opaque text (not modelled)."""

    body_text: str = ""


@dataclass
class TryStatement(Statement):
    expression: Optional[Expression] = None
    body: Optional[Block] = None
    catch_bodies: list[Block] = field(default_factory=list)


@dataclass
class UnparsedStatement(Statement):
    """A statement the tolerant parser could not understand but skipped."""

    text: str = ""


# ---------------------------------------------------------------------------
# Source unit
# ---------------------------------------------------------------------------


@dataclass
class SourceUnit(Node):
    """The root of a parsed file or snippet.

    ``items`` may contain contract definitions, free functions, free
    statements, state variables, and directives — snippet mode lifts the
    usual nesting restrictions (Section 4.1, "Unnesting of Hierarchy").
    """

    items: list[Node] = field(default_factory=list)
    warnings: list = field(default_factory=list)
    snippet_mode: bool = False

    def contracts(self) -> list[ContractDefinition]:
        return [item for item in self.items if isinstance(item, ContractDefinition)]

    def free_functions(self) -> list[FunctionDefinition]:
        return [item for item in self.items if isinstance(item, FunctionDefinition)]

    def free_statements(self) -> list[Statement]:
        return [item for item in self.items if isinstance(item, Statement)]

    @property
    def shape(self) -> str:
        """Classify the snippet shape: ``contract``, ``function`` or ``statements``.

        The paper reports that 54.2% of parsed snippets contain contract
        definitions, 38% only function definitions, and 7.8% only statements.
        """
        if self.contracts():
            return "contract"
        if self.free_functions():
            return "function"
        return "statements"
