"""Tolerant Solidity parsing substrate.

This sub-package replaces the modified ANTLR grammar used by the paper
(Section 4.1) with a hand-written tolerant lexer and recursive-descent
parser.  The parser operates in two modes:

* *strict* mode rejects anything that is not a structurally valid Solidity
  source unit, and
* *snippet* mode implements the grammar modifications of the paper:
  hierarchy unnesting (functions and statements may appear at the top
  level), newline statement termination (missing ``;``), and tolerance of
  ``...`` placeholders.

The public entry points are :func:`parse` and :func:`parse_snippet` which
return a :class:`~repro.solidity.ast_nodes.SourceUnit`.
"""

from repro.solidity.ast_nodes import (
    ArrayTypeName,
    Assignment,
    BinaryOperation,
    Block,
    BoolLiteral,
    BreakStatement,
    ContinueStatement,
    ContractDefinition,
    DoWhileStatement,
    ElementaryTypeName,
    EmitStatement,
    EnumDefinition,
    EventDefinition,
    ExpressionStatement,
    ForStatement,
    FunctionCall,
    FunctionDefinition,
    Identifier,
    IfStatement,
    IndexAccess,
    MappingTypeName,
    MemberAccess,
    ModifierDefinition,
    ModifierInvocation,
    NewExpression,
    Node,
    NumberLiteral,
    Parameter,
    PlaceholderStatement,
    PragmaDirective,
    ReturnStatement,
    RevertStatement,
    SourceUnit,
    StateVariableDeclaration,
    StringLiteral,
    StructDefinition,
    ThrowStatement,
    TupleExpression,
    TypeName,
    UnaryOperation,
    UserDefinedTypeName,
    VariableDeclaration,
    VariableDeclarationStatement,
    WhileStatement,
)
from repro.solidity.errors import SolidityParseError, SoliditySyntaxWarning
from repro.solidity.keywords import (
    JAVASCRIPT_KEYWORDS,
    SOLIDITY_KEYWORDS,
    UNIQUE_SOLIDITY_KEYWORDS,
    looks_like_solidity,
)
from repro.solidity.lexer import Lexer, Token, TokenType, tokenize
from repro.solidity.parser import Parser, parse, parse_snippet

__all__ = [
    "ArrayTypeName",
    "Assignment",
    "BinaryOperation",
    "Block",
    "BoolLiteral",
    "BreakStatement",
    "ContinueStatement",
    "ContractDefinition",
    "DoWhileStatement",
    "ElementaryTypeName",
    "EmitStatement",
    "EnumDefinition",
    "EventDefinition",
    "ExpressionStatement",
    "ForStatement",
    "FunctionCall",
    "FunctionDefinition",
    "Identifier",
    "IfStatement",
    "IndexAccess",
    "JAVASCRIPT_KEYWORDS",
    "Lexer",
    "MappingTypeName",
    "MemberAccess",
    "ModifierDefinition",
    "ModifierInvocation",
    "NewExpression",
    "Node",
    "NumberLiteral",
    "Parameter",
    "Parser",
    "PlaceholderStatement",
    "PragmaDirective",
    "ReturnStatement",
    "RevertStatement",
    "SOLIDITY_KEYWORDS",
    "SolidityParseError",
    "SoliditySyntaxWarning",
    "SourceUnit",
    "StateVariableDeclaration",
    "StringLiteral",
    "StructDefinition",
    "ThrowStatement",
    "Token",
    "TokenType",
    "TupleExpression",
    "TypeName",
    "UNIQUE_SOLIDITY_KEYWORDS",
    "UnaryOperation",
    "UserDefinedTypeName",
    "VariableDeclaration",
    "VariableDeclarationStatement",
    "WhileStatement",
    "looks_like_solidity",
    "parse",
    "parse_snippet",
    "tokenize",
]
