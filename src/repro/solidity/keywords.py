"""Keyword lists used to decide whether a snippet is Solidity at all.

The paper (Section 6.1) filters out snippets that have been tagged with
``solidity`` but are actually JavaScript, shell output, or pseudo-code.  It
does so by checking whether a snippet contains at least one keyword that is
unique to Solidity, i.e. a Solidity keyword that is not also a JavaScript
keyword.  This module reproduces that filter.
"""

from __future__ import annotations

import re

#: Reserved words and well-known built-ins of the Solidity language.  The
#: list intentionally errs on the side of inclusion: the paper reports 251
#: Solidity keywords of which 166 remain after removing words shared with
#: JavaScript.
SOLIDITY_KEYWORDS = frozenset(
    {
        # control flow / structure shared with many languages
        "pragma", "solidity", "import", "contract", "interface", "library",
        "function", "modifier", "event", "struct", "enum", "mapping",
        "constructor", "fallback", "receive", "using", "is", "new", "delete",
        "emit", "return", "returns", "if", "else", "for", "while", "do",
        "break", "continue", "throw", "try", "catch", "assembly", "unchecked",
        # visibility and mutability
        "public", "private", "internal", "external", "pure", "view",
        "payable", "constant", "immutable", "virtual", "override", "abstract",
        "anonymous", "indexed", "storage", "memory", "calldata",
        # value types
        "address", "bool", "string", "bytes", "byte", "int", "uint",
        "int8", "int16", "int32", "int64", "int128", "int256",
        "uint8", "uint16", "uint32", "uint64", "uint128", "uint256",
        "bytes1", "bytes2", "bytes4", "bytes8", "bytes16", "bytes20",
        "bytes32", "fixed", "ufixed",
        # literals and units
        "true", "false", "wei", "gwei", "szabo", "finney", "ether",
        "seconds", "minutes", "hours", "days", "weeks", "years",
        # globals and members
        "msg", "sender", "value", "data", "sig", "gas", "tx", "origin",
        "gasprice", "block", "coinbase", "difficulty", "gaslimit", "number",
        "timestamp", "blockhash", "now", "this", "super", "selfdestruct",
        "suicide", "require", "assert", "revert", "keccak256", "sha256",
        "sha3", "ripemd160", "ecrecover", "addmod", "mulmod", "gasleft",
        "balance", "transfer", "send", "call", "callcode", "delegatecall",
        "staticcall", "push", "pop", "length", "abi", "encode", "encodePacked",
        "encodeWithSelector", "encodeWithSignature", "decode", "type",
        "creationCode", "runtimeCode", "interfaceId", "min", "max",
        "wrap", "unwrap", "error", "var", "let", "leave",
    }
)

#: Reserved words of ECMAScript plus common JavaScript builtins that show up
#: in Q&A snippets (web3.js / ethers.js client code is the main source of
#: mis-tagged snippets).
JAVASCRIPT_KEYWORDS = frozenset(
    {
        "abstract", "arguments", "await", "boolean", "break", "byte", "case",
        "catch", "char", "class", "const", "continue", "debugger", "default",
        "delete", "do", "double", "else", "enum", "eval", "export", "extends",
        "false", "final", "finally", "float", "for", "function", "goto", "if",
        "implements", "import", "in", "instanceof", "int", "interface", "let",
        "long", "native", "new", "null", "package", "private", "protected",
        "public", "return", "short", "static", "super", "switch",
        "synchronized", "this", "throw", "throws", "transient", "true", "try",
        "typeof", "var", "void", "volatile", "while", "with", "yield",
        "console", "log", "require", "module", "exports", "async", "promise",
        "undefined", "number", "string", "object", "json", "error", "length",
        "push", "pop", "value", "data", "type", "min", "max", "is",
    }
)

#: Solidity keywords that do not collide with JavaScript.  A snippet must
#: contain at least one of these to be considered Solidity (Section 6.1).
UNIQUE_SOLIDITY_KEYWORDS = frozenset(
    kw for kw in SOLIDITY_KEYWORDS if kw.lower() not in {j.lower() for j in JAVASCRIPT_KEYWORDS}
)

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def extract_words(source: str) -> set[str]:
    """Return the set of identifier-like words appearing in ``source``."""
    return set(_WORD_RE.findall(source))


def looks_like_solidity(source: str, min_unique_keywords: int = 1) -> bool:
    """Return ``True`` if ``source`` contains unique Solidity keywords.

    This reproduces the keyword filter from Section 6.1 of the paper: a
    snippet qualifies as Solidity when it contains at least
    ``min_unique_keywords`` keywords that exist in Solidity but not in
    JavaScript.
    """
    if not source or not source.strip():
        return False
    words = extract_words(source)
    hits = sum(1 for word in words if word in UNIQUE_SOLIDITY_KEYWORDS)
    return hits >= min_unique_keywords


def solidity_keyword_hits(source: str) -> set[str]:
    """Return the unique Solidity keywords present in ``source``."""
    return {word for word in extract_words(source) if word in UNIQUE_SOLIDITY_KEYWORDS}
