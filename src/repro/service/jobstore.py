"""The persistent job queue of the analysis service daemon.

A :class:`JobStore` is one SQLite database (``jobs.sqlite`` inside the
service data directory) holding every submitted job and its results.
Jobs move through a fixed lifecycle::

    queued -> running -> done
                      -> failed
                      -> cancelled

and the whole lifecycle is durable: a daemon killed mid-run loses
nothing.  On startup :meth:`JobStore.recover` moves every ``running``
job back to ``queued`` and drops its partial results, so each job's
envelopes are computed exactly once per completion — no lost jobs, no
duplicated results.  :meth:`JobStore.cancel` drops a queued job
immediately; a running job only gets its ``cancel_requested`` flag set,
and the scheduler honours it at the next safe boundary.

Jobs may additionally carry a **workload** descriptor (``{"kind": ...,
"params": ...}``): instead of analyzer envelopes, such a job executes a
registered :mod:`repro.service.workloads` evaluation workload decomposed
into a deterministic sequence of **chunks** persisted in the
``job_chunks`` table (one row per chunk, canonical-JSON result).
Completed chunk rows *survive* crash recovery — that is what makes a
SIGKILLed parameter sweep resume from where it stopped instead of
recomputing the whole grid.

Jobs carry a **priority lane** (``interactive`` or ``batch``; the
default) and an optional **tenant** label.  :meth:`JobStore.claim_next`
serves the interactive lane first but keeps an *aging credit* for the
batch lane: after ``batch_aging`` consecutive interactive claims made
while a batch job was waiting, the oldest batch job is claimed instead.
Within a lane, claims are strictly FIFO — an all-batch queue (every job
submitted without an explicit priority) behaves exactly like the
pre-lane store.

Results are stored one row per envelope, in completion order, as
*canonical JSON* strings (:func:`repro.api.envelope.canonical_json`).
Storing the exact wire bytes is what lets the HTTP layer serve results
byte-identical to a local :meth:`~repro.api.session.AnalysisSession.run`
— and lets ``GET /v1/jobs/{id}/stream`` serve envelopes incrementally
while the job is still running.

Concurrency follows :mod:`repro.core.persistence`: one connection behind
a lock (``check_same_thread=False``), WAL journal, an explicit busy
timeout, and :func:`~repro.core.persistence.retry_on_busy` around writes
so concurrent daemons (or a daemon racing the CLI) degrade to waiting
instead of failing.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.core.persistence import DEFAULT_BUSY_TIMEOUT_SECONDS, retry_on_busy

#: the job lifecycle, in order
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: job states that will never change again
TERMINAL_STATES = ("done", "failed", "cancelled")

#: the chunk lifecycle of workload jobs (``job_chunks.state``)
CHUNK_STATES = ("pending", "running", "done", "cancelled")

#: the two scheduling lanes, in claim-preference order
PRIORITY_LANES = ("interactive", "batch")

#: the lane given to jobs submitted without an explicit priority
DEFAULT_PRIORITY = "batch"

#: consecutive interactive claims allowed while a batch job waits
DEFAULT_BATCH_AGING = 4

#: file name of the SQLite database inside a service data directory
JOBS_DATABASE_NAME = "jobs.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id        INTEGER PRIMARY KEY AUTOINCREMENT,
    state     TEXT NOT NULL DEFAULT 'queued',
    analyses  TEXT NOT NULL,
    corpus    TEXT NOT NULL,
    options   TEXT NOT NULL DEFAULT '{}',
    error     TEXT,
    submitted REAL NOT NULL,
    started   REAL,
    finished  REAL,
    fanout    TEXT,
    priority  TEXT NOT NULL DEFAULT 'batch',
    tenant    TEXT,
    workload  TEXT,
    cancel_requested INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, id);
CREATE TABLE IF NOT EXISTS job_results (
    job_id   INTEGER NOT NULL,
    seq      INTEGER NOT NULL,
    envelope TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
);
CREATE TABLE IF NOT EXISTS job_chunks (
    job_id   INTEGER NOT NULL,
    chunk    INTEGER NOT NULL,
    spec     TEXT NOT NULL,
    state    TEXT NOT NULL DEFAULT 'pending',
    result   TEXT,
    started  REAL,
    finished REAL,
    PRIMARY KEY (job_id, chunk)
);
"""


def _isoformat(timestamp: Optional[float]) -> Optional[str]:
    """An epoch timestamp as an ISO-8601 UTC string (``None`` passes through)."""
    if timestamp is None:
        return None
    from datetime import datetime, timezone

    return datetime.fromtimestamp(timestamp, timezone.utc).isoformat()


@dataclass(frozen=True)
class Job:
    """One submitted analysis job, as read from the store."""

    job_id: int
    state: str
    #: analyzer ids to run, in order (analysis-major result ordering)
    analyses: tuple
    #: ``[id, source]`` pairs, exactly as submitted
    corpus: list
    #: per-analyzer options forwarded to :meth:`AnalysisSession.run_iter`
    options: dict
    error: Optional[str] = None
    submitted: Optional[float] = None
    started: Optional[float] = None
    finished: Optional[float] = None
    #: shard fan-out bookkeeping written by the cluster coordinator
    #: (``{"shards": {name: remote_job_id}, "degraded": [name, ...]}``);
    #: ``None`` on single-node daemons and before fan-out starts
    fanout: Optional[dict] = None
    #: scheduling lane (``interactive`` or ``batch``)
    priority: str = DEFAULT_PRIORITY
    #: tenant label recorded at submission (``X-Repro-Tenant``), if any
    tenant: Optional[str] = None
    #: workload descriptor (``{"kind": ..., "params": {...}}``) for jobs
    #: executing a registered evaluation workload; ``None`` for plain jobs
    workload: Optional[dict] = None
    #: set by :meth:`JobStore.cancel` on a running job; the scheduler
    #: stops the job at the next chunk boundary when it sees the flag
    cancel_requested: bool = False

    @property
    def elapsed_seconds(self) -> Optional[float]:
        """Wall-clock run time, once the job has started and finished."""
        if self.started is None or self.finished is None:
            return None
        return self.finished - self.started

    def as_dict(self, include_corpus: bool = False) -> dict:
        """The JSON wire form served by ``GET /v1/jobs/{id}``.

        The corpus (potentially megabytes of source) is omitted unless
        ``include_corpus`` is set; ``corpus_size`` always rides along.
        Epoch timestamps are mirrored as ISO-8601 UTC strings
        (``created_at``/``started_at``/``finished_at``) with the wall
        ``duration_seconds`` alongside, so clients need no math.
        """
        data = {
            "id": self.job_id,
            "state": self.state,
            "analyses": list(self.analyses),
            "options": self.options,
            "error": self.error,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "created_at": _isoformat(self.submitted),
            "started_at": _isoformat(self.started),
            "finished_at": _isoformat(self.finished),
            "duration_seconds": self.elapsed_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "corpus_size": len(self.corpus),
            "priority": self.priority,
        }
        if self.tenant is not None:
            data["tenant"] = self.tenant
        if self.fanout is not None:
            data["fanout"] = self.fanout
        if self.workload is not None:
            data["workload"] = self.workload
        if self.cancel_requested:
            data["cancel_requested"] = True
        if include_corpus:
            data["corpus"] = self.corpus
        return data


class JobStore:
    """SQLite-backed persistent job queue (see the module docstring).

    Parameters
    ----------
    path:
        The database file (parent directories are created on demand).
    busy_timeout_seconds:
        How long SQLite itself waits on a locked database before the
        :func:`~repro.core.persistence.retry_on_busy` layer kicks in.
    batch_aging:
        Anti-starvation credit for the batch lane: after this many
        consecutive interactive claims made while a batch job was
        waiting, :meth:`claim_next` serves the batch lane once.
    """

    def __init__(
        self,
        path: Union[str, Path],
        busy_timeout_seconds: float = DEFAULT_BUSY_TIMEOUT_SECONDS,
        batch_aging: int = DEFAULT_BATCH_AGING,
    ):
        if batch_aging < 1:
            raise ValueError("batch_aging must be >= 1")
        self.batch_aging = batch_aging
        self._interactive_streak = 0
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None)
        self._connection.executescript(_SCHEMA)
        columns = {row[1] for row in
                   self._connection.execute("PRAGMA table_info(jobs)")}
        if "fanout" not in columns:
            # Databases written before shard fan-out bookkeeping existed.
            self._connection.execute("ALTER TABLE jobs ADD COLUMN fanout TEXT")
        if "priority" not in columns:
            # Databases written before priority lanes existed: every old
            # row lands in the batch lane, preserving its FIFO position.
            self._connection.execute(
                "ALTER TABLE jobs ADD COLUMN priority TEXT NOT NULL "
                f"DEFAULT '{DEFAULT_PRIORITY}'")
        if "tenant" not in columns:
            self._connection.execute("ALTER TABLE jobs ADD COLUMN tenant TEXT")
        if "workload" not in columns:
            # Databases written before the workload engine existed.
            self._connection.execute("ALTER TABLE jobs ADD COLUMN workload TEXT")
        if "cancel_requested" not in columns:
            self._connection.execute(
                "ALTER TABLE jobs ADD COLUMN cancel_requested "
                "INTEGER NOT NULL DEFAULT 0")
        # Created after the column migration: pre-priority databases do
        # not have the column yet when the schema script runs.
        self._connection.execute(
            "CREATE INDEX IF NOT EXISTS jobs_by_lane "
            "ON jobs (state, priority, id)")
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute(
            f"PRAGMA busy_timeout={int(busy_timeout_seconds * 1000)}")

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Close the database connection (idempotent)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _execute(self, sql: str, parameters: tuple = ()):
        if self._connection is None:
            raise RuntimeError("JobStore is closed")
        return retry_on_busy(lambda: self._connection.execute(sql, parameters))

    def _rollback(self) -> None:
        """Best-effort ROLLBACK that never masks the original exception."""
        try:
            if self._connection is not None:
                self._connection.execute("ROLLBACK")
        except sqlite3.Error:
            pass

    # -- submission and claiming ----------------------------------------------
    def submit(self, corpus: Iterable, analyses: Iterable[str],
               options: Optional[dict] = None,
               priority: Optional[str] = None,
               tenant: Optional[str] = None,
               workload: Optional[dict] = None) -> Job:
        """Enqueue a job; returns it in ``queued`` state with its id assigned.

        Parameters
        ----------
        corpus:
            ``[id, source]`` pairs, stored exactly as submitted.
        analyses:
            Analyzer ids to run, in order.
        options:
            Per-analyzer option mapping.
        priority:
            Scheduling lane; ``None`` means :data:`DEFAULT_PRIORITY`.
        tenant:
            Optional tenant label recorded with the job.
        workload:
            Workload descriptor (``{"kind": ..., "params": {...}}``);
            such a job runs a registered evaluation workload in chunks
            instead of analyzer envelopes over a corpus.
        """
        corpus = [list(pair) for pair in corpus]
        analyses = tuple(analyses)
        options = dict(options or {})
        if priority is None:
            priority = DEFAULT_PRIORITY
        if priority not in PRIORITY_LANES:
            raise ValueError(
                f"priority must be one of {'|'.join(PRIORITY_LANES)}, "
                f"not {priority!r}")
        now = time.time()
        with self._lock:
            cursor = self._execute(
                "INSERT INTO jobs (state, analyses, corpus, options, "
                "submitted, priority, tenant, workload) "
                "VALUES ('queued', ?, ?, ?, ?, ?, ?, ?)",
                (json.dumps(list(analyses)), json.dumps(corpus),
                 json.dumps(options), now, priority, tenant,
                 None if workload is None else json.dumps(workload)))
            job_id = cursor.lastrowid
        return Job(job_id=job_id, state="queued", analyses=analyses,
                   corpus=corpus, options=options, submitted=now,
                   priority=priority, tenant=tenant, workload=workload)

    def claim_next(self) -> Optional[Job]:
        """Atomically move the next ``queued`` job to ``running`` and return it.

        The interactive lane is served first, FIFO within each lane, but
        a waiting batch job is passed over by at most ``batch_aging``
        consecutive interactive claims before it is served (the aging
        credit), so batch work cannot starve under a steady interactive
        stream.  An all-batch queue drains in strict submission order —
        identical to the pre-lane store.  The claim runs inside
        ``BEGIN IMMEDIATE`` so two daemons sharing one database can
        never claim the same job.
        """
        with self._lock:
            self._execute("BEGIN IMMEDIATE")
            try:
                heads = dict(self._execute(
                    "SELECT priority, MIN(id) FROM jobs "
                    "WHERE state = 'queued' GROUP BY priority").fetchall())
                interactive = heads.get("interactive")
                batch = heads.get("batch")
                if interactive is not None and batch is not None:
                    if self._interactive_streak >= self.batch_aging:
                        job_id = batch
                    else:
                        job_id = interactive
                elif interactive is not None:
                    job_id = interactive
                else:
                    job_id = batch
                if job_id is not None:
                    if job_id == batch:
                        self._interactive_streak = 0
                    elif batch is not None:
                        # Only count claims that actually pass over a
                        # waiting batch job toward the aging credit.
                        self._interactive_streak += 1
                    self._execute(
                        "UPDATE jobs SET state = 'running', started = ? "
                        "WHERE id = ?", (time.time(), job_id))
            except BaseException:
                self._rollback()
                raise
            self._execute("COMMIT")
            if job_id is None:
                return None
            return self._read_job(job_id)

    # -- results --------------------------------------------------------------
    def append_result(self, job_id: int, seq: int, envelope_json: str) -> None:
        """Persist one completed envelope (canonical JSON) under ``seq``."""
        with self._lock:
            self._execute(
                "REPLACE INTO job_results (job_id, seq, envelope) VALUES (?, ?, ?)",
                (job_id, seq, envelope_json))

    def results(self, job_id: int, after: int = -1) -> list:
        """``(seq, envelope_json)`` rows of a job with ``seq > after``, in order."""
        with self._lock:
            return self._execute(
                "SELECT seq, envelope FROM job_results "
                "WHERE job_id = ? AND seq > ? ORDER BY seq",
                (job_id, after)).fetchall()

    def set_fanout(self, job_id: int, fanout: Optional[dict]) -> None:
        """Record (or clear) a job's shard fan-out bookkeeping.

        The cluster coordinator writes this the moment it has dispatched
        sub-jobs, so a coordinator killed mid-fan-out leaves an explicit
        trace — and :meth:`recover` can wipe it when the job requeues.
        """
        with self._lock:
            self._execute(
                "UPDATE jobs SET fanout = ? WHERE id = ?",
                (None if fanout is None else json.dumps(fanout), job_id))

    def finish(self, job_id: int, state: str, error: Optional[str] = None) -> None:
        """Move a job to a terminal state (``done``/``failed``/``cancelled``)."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"finish() takes a terminal state, not {state!r}")
        with self._lock:
            self._execute(
                "UPDATE jobs SET state = ?, error = ?, finished = ? WHERE id = ?",
                (state, error, time.time(), job_id))

    # -- cancellation ---------------------------------------------------------
    def cancel(self, job_id: int) -> Optional[str]:
        """Cancel a job; returns the resulting state, or ``None`` if unknown.

        A ``queued`` job is dropped immediately (state ``cancelled``).
        A ``running`` job only gets its ``cancel_requested`` flag set —
        the scheduler stops it at the next chunk boundary (workloads) or
        after the in-flight run (plain jobs); the returned state is
        ``"cancelling"``.  Terminal jobs are left untouched (their state
        is returned as-is).
        """
        with self._lock:
            self._execute("BEGIN IMMEDIATE")
            try:
                row = self._execute(
                    "SELECT state FROM jobs WHERE id = ?", (job_id,)).fetchone()
                if row is None:
                    self._execute("COMMIT")
                    return None
                state = row[0]
                if state == "queued":
                    self._execute(
                        "UPDATE jobs SET state = 'cancelled', finished = ?, "
                        "cancel_requested = 1 WHERE id = ?",
                        (time.time(), job_id))
                    self._execute(
                        "UPDATE job_chunks SET state = 'cancelled' "
                        "WHERE job_id = ? AND state != 'done'", (job_id,))
                    state = "cancelled"
                elif state == "running":
                    self._execute(
                        "UPDATE jobs SET cancel_requested = 1 WHERE id = ?",
                        (job_id,))
                    state = "cancelling"
            except BaseException:
                self._rollback()
                raise
            self._execute("COMMIT")
            return state

    def is_cancel_requested(self, job_id: int) -> bool:
        """Whether :meth:`cancel` has flagged this job (chunk-boundary poll)."""
        with self._lock:
            row = self._execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?",
                (job_id,)).fetchone()
        return bool(row and row[0])

    # -- workload chunks ------------------------------------------------------
    def add_chunks(self, job_id: int, specs: Iterable[str]) -> int:
        """Insert the chunk plan of a workload job; returns rows inserted.

        Chunk indices follow the iteration order of ``specs`` (each one
        a canonical-JSON chunk spec).  Existing rows are left untouched
        (``INSERT OR IGNORE``), which is exactly what a resumed job
        needs: completed chunks keep their results, the rest stay
        pending.
        """
        inserted = 0
        with self._lock:
            for chunk, spec in enumerate(specs):
                cursor = self._execute(
                    "INSERT OR IGNORE INTO job_chunks (job_id, chunk, spec) "
                    "VALUES (?, ?, ?)", (job_id, chunk, spec))
                inserted += cursor.rowcount
        return inserted

    def chunks(self, job_id: int) -> list:
        """Every chunk row of a job, in chunk order, as dicts."""
        with self._lock:
            rows = self._execute(
                "SELECT chunk, spec, state, result, started, finished "
                "FROM job_chunks WHERE job_id = ? ORDER BY chunk",
                (job_id,)).fetchall()
        return [{"chunk": row[0], "spec": row[1], "state": row[2],
                 "result": row[3], "started": row[4], "finished": row[5]}
                for row in rows]

    def pending_chunks(self, job_id: int) -> list:
        """``(chunk, spec)`` rows not yet ``done``, in chunk order."""
        with self._lock:
            return self._execute(
                "SELECT chunk, spec FROM job_chunks "
                "WHERE job_id = ? AND state != 'done' ORDER BY chunk",
                (job_id,)).fetchall()

    def start_chunk(self, job_id: int, chunk: int) -> None:
        """Mark one chunk ``running`` and stamp its start time."""
        with self._lock:
            self._execute(
                "UPDATE job_chunks SET state = 'running', started = ? "
                "WHERE job_id = ? AND chunk = ?", (time.time(), job_id, chunk))

    def finish_chunk(self, job_id: int, chunk: int, result: str,
                     state: str = "done") -> None:
        """Persist one chunk's canonical-JSON result and mark it done."""
        with self._lock:
            self._execute(
                "UPDATE job_chunks SET state = ?, result = ?, finished = ? "
                "WHERE job_id = ? AND chunk = ?",
                (state, result, time.time(), job_id, chunk))

    def cancel_pending_chunks(self, job_id: int) -> int:
        """Mark every non-``done`` chunk ``cancelled``; returns how many.

        Called by the workload runner when it honours a cancel request
        at a chunk boundary — completed chunk results are kept (a later
        resume picks up from them), the rest are explicitly marked.
        """
        with self._lock:
            cursor = self._execute(
                "UPDATE job_chunks SET state = 'cancelled' "
                "WHERE job_id = ? AND state != 'done'", (job_id,))
            return cursor.rowcount

    def chunk_progress(self, job_id: int) -> dict:
        """``{"done", "total", "eta"}`` of a workload job's chunk plan.

        ``eta`` is the estimated remaining wall-clock in seconds — mean
        duration of completed chunks times the chunks left — or ``None``
        before the first chunk completes (or once everything is done).
        """
        with self._lock:
            rows = self._execute(
                "SELECT state, started, finished FROM job_chunks "
                "WHERE job_id = ?", (job_id,)).fetchall()
        total = len(rows)
        done = sum(1 for state, _, _ in rows if state == "done")
        durations = [finished - started for state, started, finished in rows
                     if state == "done" and started is not None
                     and finished is not None]
        eta = None
        if durations and done < total:
            eta = (sum(durations) / len(durations)) * (total - done)
        return {"done": done, "total": total, "eta": eta}

    def requeue(self, job_id: int) -> Optional[Job]:
        """Requeue a failed/cancelled workload job, keeping its done chunks.

        Non-``done`` chunks are reset to ``pending`` (results and
        timestamps cleared) and the job returns to ``queued`` with its
        cancel flag cleared, so the next claim resumes the workload from
        the completed chunks.  Returns the requeued job, or ``None``
        when the id is unknown.  Raises :class:`ValueError` for jobs
        that are not in a resumable state (``failed``/``cancelled``).
        """
        with self._lock:
            self._execute("BEGIN IMMEDIATE")
            try:
                row = self._execute(
                    "SELECT state FROM jobs WHERE id = ?", (job_id,)).fetchone()
                if row is None:
                    self._execute("COMMIT")
                    return None
                if row[0] not in ("failed", "cancelled"):
                    raise ValueError(
                        f"job {job_id} is {row[0]}; only failed or "
                        f"cancelled jobs can be resumed")
                self._execute(
                    "DELETE FROM job_results WHERE job_id = ?", (job_id,))
                self._execute(
                    "UPDATE job_chunks SET state = 'pending', result = NULL, "
                    "started = NULL, finished = NULL "
                    "WHERE job_id = ? AND state != 'done'", (job_id,))
                self._execute(
                    "UPDATE jobs SET state = 'queued', started = NULL, "
                    "finished = NULL, error = NULL, cancel_requested = 0 "
                    "WHERE id = ?", (job_id,))
            except BaseException:
                self._rollback()
                raise
            self._execute("COMMIT")
            return self._read_job(job_id)

    # -- introspection --------------------------------------------------------
    def get(self, job_id: int) -> Optional[Job]:
        """The job with ``job_id``, or ``None`` when unknown."""
        with self._lock:
            return self._read_job(job_id)

    def _read_job(self, job_id: int) -> Optional[Job]:
        row = self._execute(
            "SELECT id, state, analyses, corpus, options, error, submitted, "
            "started, finished, fanout, priority, tenant, workload, "
            "cancel_requested FROM jobs WHERE id = ?",
            (job_id,)).fetchone()
        if row is None:
            return None
        return Job(job_id=row[0], state=row[1],
                   analyses=tuple(json.loads(row[2])), corpus=json.loads(row[3]),
                   options=json.loads(row[4]), error=row[5], submitted=row[6],
                   started=row[7], finished=row[8],
                   fanout=None if row[9] is None else json.loads(row[9]),
                   priority=row[10], tenant=row[11],
                   workload=None if row[12] is None else json.loads(row[12]),
                   cancel_requested=bool(row[13]))

    @staticmethod
    def _filter_clause(state: Optional[str], tenant: Optional[str],
                       workload_only: bool = False):
        clauses, parameters = [], []
        if state is not None:
            clauses.append("state = ?")
            parameters.append(state)
        if tenant is not None:
            clauses.append("tenant = ?")
            parameters.append(tenant)
        if workload_only:
            clauses.append("workload IS NOT NULL")
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return where, parameters

    def list_jobs(self, state: Optional[str] = None, limit: int = 100,
                  offset: int = 0, tenant: Optional[str] = None,
                  workload_only: bool = False) -> list:
        """A page of jobs (newest first), filtered by state and/or tenant.

        Parameters
        ----------
        state:
            Keep only jobs in this state, when given.
        limit:
            Page size (number of jobs returned at most).
        offset:
            Number of matching jobs to skip before the page starts.
        tenant:
            Keep only jobs recorded under this tenant, when given.
        workload_only:
            Keep only workload jobs (``GET /v1/workloads``).
        """
        where, parameters = self._filter_clause(state, tenant, workload_only)
        with self._lock:
            rows = self._execute(
                f"SELECT id FROM jobs{where} ORDER BY id DESC LIMIT ? OFFSET ?",
                (*parameters, limit, offset)).fetchall()
            return [self._read_job(row[0]) for row in rows]

    def count_jobs(self, state: Optional[str] = None,
                   tenant: Optional[str] = None,
                   workload_only: bool = False) -> int:
        """Total number of jobs matching the ``list_jobs`` filters."""
        where, parameters = self._filter_clause(state, tenant, workload_only)
        with self._lock:
            row = self._execute(
                f"SELECT COUNT(*) FROM jobs{where}", tuple(parameters)).fetchone()
        return row[0]

    def states(self, job_ids: Iterable[int]) -> dict:
        """``{job_id: state}`` for every known id in ``job_ids``, in bulk.

        One query instead of one :meth:`get` per id — the gateway uses
        this to prune finished jobs from per-tenant in-flight sets on
        every admission decision.
        """
        ids = [int(job_id) for job_id in job_ids]
        if not ids:
            return {}
        placeholders = ",".join("?" for _ in ids)
        with self._lock:
            rows = self._execute(
                f"SELECT id, state FROM jobs WHERE id IN ({placeholders})",
                tuple(ids)).fetchall()
        return dict(rows)

    def counts(self) -> dict:
        """Jobs per state (every state present, zero when empty)."""
        with self._lock:
            rows = self._execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state").fetchall()
        counts = {state: 0 for state in JOB_STATES}
        counts.update(dict(rows))
        return counts

    def queue_depth(self) -> int:
        """Number of jobs still waiting or running."""
        counts = self.counts()
        return counts["queued"] + counts["running"]

    # -- crash recovery -------------------------------------------------------
    def recover(self) -> int:
        """Requeue jobs left ``running`` by a killed daemon; returns how many.

        Partial results of the interrupted run are dropped, so the rerun
        starts from envelope zero — exactly-once results per completion,
        never a duplicate row.  **Completed workload chunk rows are
        kept** (only chunks caught mid-run go back to ``pending``): the
        requeued workload resumes from its last finished chunk instead
        of recomputing the whole plan.

        Recovery assumes it runs while no other daemon is draining this
        database (the one-daemon-per-data-directory deployment): a
        ``running`` job cannot be distinguished from one a *live* peer
        is executing right now, so recovering next to an active peer
        would requeue — and duplicate — its in-flight work.
        """
        with self._lock:
            self._execute("BEGIN IMMEDIATE")
            try:
                rows = self._execute(
                    "SELECT id FROM jobs WHERE state = 'running'").fetchall()
                for (job_id,) in rows:
                    self._execute(
                        "DELETE FROM job_results WHERE job_id = ?", (job_id,))
                    self._execute(
                        "UPDATE job_chunks SET state = 'pending', "
                        "result = NULL, started = NULL, finished = NULL "
                        "WHERE job_id = ? AND state = 'running'", (job_id,))
                    self._execute(
                        "UPDATE jobs SET state = 'queued', started = NULL, "
                        "fanout = NULL WHERE id = ?", (job_id,))
            except BaseException:
                self._rollback()
                raise
            self._execute("COMMIT")
            return len(rows)


__all__ = [
    "CHUNK_STATES",
    "DEFAULT_BATCH_AGING",
    "DEFAULT_PRIORITY",
    "JOB_STATES",
    "JOBS_DATABASE_NAME",
    "Job",
    "JobStore",
    "PRIORITY_LANES",
    "TERMINAL_STATES",
]
