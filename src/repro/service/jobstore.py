"""The persistent job queue of the analysis service daemon.

A :class:`JobStore` is one SQLite database (``jobs.sqlite`` inside the
service data directory) holding every submitted job and its results.
Jobs move through a fixed lifecycle::

    queued -> running -> done
                      -> failed

and the whole lifecycle is durable: a daemon killed mid-run loses
nothing.  On startup :meth:`JobStore.recover` moves every ``running``
job back to ``queued`` and drops its partial results, so each job's
envelopes are computed exactly once per completion — no lost jobs, no
duplicated results.

Results are stored one row per envelope, in completion order, as
*canonical JSON* strings (:func:`repro.api.envelope.canonical_json`).
Storing the exact wire bytes is what lets the HTTP layer serve results
byte-identical to a local :meth:`~repro.api.session.AnalysisSession.run`
— and lets ``GET /v1/jobs/{id}/stream`` serve envelopes incrementally
while the job is still running.

Concurrency follows :mod:`repro.core.persistence`: one connection behind
a lock (``check_same_thread=False``), WAL journal, an explicit busy
timeout, and :func:`~repro.core.persistence.retry_on_busy` around writes
so concurrent daemons (or a daemon racing the CLI) degrade to waiting
instead of failing.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.core.persistence import DEFAULT_BUSY_TIMEOUT_SECONDS, retry_on_busy

#: the job lifecycle, in order
JOB_STATES = ("queued", "running", "done", "failed")

#: job states that will never change again
TERMINAL_STATES = ("done", "failed")

#: file name of the SQLite database inside a service data directory
JOBS_DATABASE_NAME = "jobs.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id        INTEGER PRIMARY KEY AUTOINCREMENT,
    state     TEXT NOT NULL DEFAULT 'queued',
    analyses  TEXT NOT NULL,
    corpus    TEXT NOT NULL,
    options   TEXT NOT NULL DEFAULT '{}',
    error     TEXT,
    submitted REAL NOT NULL,
    started   REAL,
    finished  REAL,
    fanout    TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, id);
CREATE TABLE IF NOT EXISTS job_results (
    job_id   INTEGER NOT NULL,
    seq      INTEGER NOT NULL,
    envelope TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
);
"""


@dataclass(frozen=True)
class Job:
    """One submitted analysis job, as read from the store."""

    job_id: int
    state: str
    #: analyzer ids to run, in order (analysis-major result ordering)
    analyses: tuple
    #: ``[id, source]`` pairs, exactly as submitted
    corpus: list
    #: per-analyzer options forwarded to :meth:`AnalysisSession.run_iter`
    options: dict
    error: Optional[str] = None
    submitted: Optional[float] = None
    started: Optional[float] = None
    finished: Optional[float] = None
    #: shard fan-out bookkeeping written by the cluster coordinator
    #: (``{"shards": {name: remote_job_id}, "degraded": [name, ...]}``);
    #: ``None`` on single-node daemons and before fan-out starts
    fanout: Optional[dict] = None

    @property
    def elapsed_seconds(self) -> Optional[float]:
        """Wall-clock run time, once the job has started and finished."""
        if self.started is None or self.finished is None:
            return None
        return self.finished - self.started

    def as_dict(self, include_corpus: bool = False) -> dict:
        """The JSON wire form served by ``GET /v1/jobs/{id}``.

        The corpus (potentially megabytes of source) is omitted unless
        ``include_corpus`` is set; ``corpus_size`` always rides along.
        """
        data = {
            "id": self.job_id,
            "state": self.state,
            "analyses": list(self.analyses),
            "options": self.options,
            "error": self.error,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "elapsed_seconds": self.elapsed_seconds,
            "corpus_size": len(self.corpus),
        }
        if self.fanout is not None:
            data["fanout"] = self.fanout
        if include_corpus:
            data["corpus"] = self.corpus
        return data


class JobStore:
    """SQLite-backed persistent job queue (see the module docstring).

    Parameters
    ----------
    path:
        The database file (parent directories are created on demand).
    busy_timeout_seconds:
        How long SQLite itself waits on a locked database before the
        :func:`~repro.core.persistence.retry_on_busy` layer kicks in.
    """

    def __init__(
        self,
        path: Union[str, Path],
        busy_timeout_seconds: float = DEFAULT_BUSY_TIMEOUT_SECONDS,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None)
        self._connection.executescript(_SCHEMA)
        columns = {row[1] for row in
                   self._connection.execute("PRAGMA table_info(jobs)")}
        if "fanout" not in columns:
            # Databases written before shard fan-out bookkeeping existed.
            self._connection.execute("ALTER TABLE jobs ADD COLUMN fanout TEXT")
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute(
            f"PRAGMA busy_timeout={int(busy_timeout_seconds * 1000)}")

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Close the database connection (idempotent)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _execute(self, sql: str, parameters: tuple = ()):
        if self._connection is None:
            raise RuntimeError("JobStore is closed")
        return retry_on_busy(lambda: self._connection.execute(sql, parameters))

    def _rollback(self) -> None:
        """Best-effort ROLLBACK that never masks the original exception."""
        try:
            if self._connection is not None:
                self._connection.execute("ROLLBACK")
        except sqlite3.Error:
            pass

    # -- submission and claiming ----------------------------------------------
    def submit(self, corpus: Iterable, analyses: Iterable[str],
               options: Optional[dict] = None) -> Job:
        """Enqueue a job; returns it in ``queued`` state with its id assigned."""
        corpus = [list(pair) for pair in corpus]
        analyses = tuple(analyses)
        options = dict(options or {})
        now = time.time()
        with self._lock:
            cursor = self._execute(
                "INSERT INTO jobs (state, analyses, corpus, options, submitted) "
                "VALUES ('queued', ?, ?, ?, ?)",
                (json.dumps(list(analyses)), json.dumps(corpus),
                 json.dumps(options), now))
            job_id = cursor.lastrowid
        return Job(job_id=job_id, state="queued", analyses=analyses,
                   corpus=corpus, options=options, submitted=now)

    def claim_next(self) -> Optional[Job]:
        """Atomically move the oldest ``queued`` job to ``running`` and return it.

        FIFO by job id.  The claim runs inside ``BEGIN IMMEDIATE`` so two
        daemons sharing one database can never claim the same job.
        """
        with self._lock:
            self._execute("BEGIN IMMEDIATE")
            try:
                row = self._execute(
                    "SELECT id FROM jobs WHERE state = 'queued' "
                    "ORDER BY id LIMIT 1").fetchone()
                if row is not None:
                    self._execute(
                        "UPDATE jobs SET state = 'running', started = ? "
                        "WHERE id = ?", (time.time(), row[0]))
            except BaseException:
                self._rollback()
                raise
            self._execute("COMMIT")
            if row is None:
                return None
            return self._read_job(row[0])

    # -- results --------------------------------------------------------------
    def append_result(self, job_id: int, seq: int, envelope_json: str) -> None:
        """Persist one completed envelope (canonical JSON) under ``seq``."""
        with self._lock:
            self._execute(
                "REPLACE INTO job_results (job_id, seq, envelope) VALUES (?, ?, ?)",
                (job_id, seq, envelope_json))

    def results(self, job_id: int, after: int = -1) -> list:
        """``(seq, envelope_json)`` rows of a job with ``seq > after``, in order."""
        with self._lock:
            return self._execute(
                "SELECT seq, envelope FROM job_results "
                "WHERE job_id = ? AND seq > ? ORDER BY seq",
                (job_id, after)).fetchall()

    def set_fanout(self, job_id: int, fanout: Optional[dict]) -> None:
        """Record (or clear) a job's shard fan-out bookkeeping.

        The cluster coordinator writes this the moment it has dispatched
        sub-jobs, so a coordinator killed mid-fan-out leaves an explicit
        trace — and :meth:`recover` can wipe it when the job requeues.
        """
        with self._lock:
            self._execute(
                "UPDATE jobs SET fanout = ? WHERE id = ?",
                (None if fanout is None else json.dumps(fanout), job_id))

    def finish(self, job_id: int, state: str, error: Optional[str] = None) -> None:
        """Move a job to a terminal state (``done`` or ``failed``)."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"finish() takes a terminal state, not {state!r}")
        with self._lock:
            self._execute(
                "UPDATE jobs SET state = ?, error = ?, finished = ? WHERE id = ?",
                (state, error, time.time(), job_id))

    # -- introspection --------------------------------------------------------
    def get(self, job_id: int) -> Optional[Job]:
        """The job with ``job_id``, or ``None`` when unknown."""
        with self._lock:
            return self._read_job(job_id)

    def _read_job(self, job_id: int) -> Optional[Job]:
        row = self._execute(
            "SELECT id, state, analyses, corpus, options, error, submitted, "
            "started, finished, fanout FROM jobs WHERE id = ?",
            (job_id,)).fetchone()
        if row is None:
            return None
        return Job(job_id=row[0], state=row[1],
                   analyses=tuple(json.loads(row[2])), corpus=json.loads(row[3]),
                   options=json.loads(row[4]), error=row[5], submitted=row[6],
                   started=row[7], finished=row[8],
                   fanout=None if row[9] is None else json.loads(row[9]))

    def list_jobs(self, state: Optional[str] = None, limit: int = 100) -> list:
        """The most recent jobs (newest first), optionally filtered by state."""
        with self._lock:
            if state is None:
                rows = self._execute(
                    "SELECT id FROM jobs ORDER BY id DESC LIMIT ?",
                    (limit,)).fetchall()
            else:
                rows = self._execute(
                    "SELECT id FROM jobs WHERE state = ? ORDER BY id DESC LIMIT ?",
                    (state, limit)).fetchall()
            return [self._read_job(row[0]) for row in rows]

    def counts(self) -> dict:
        """Jobs per state (every state present, zero when empty)."""
        with self._lock:
            rows = self._execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state").fetchall()
        counts = {state: 0 for state in JOB_STATES}
        counts.update(dict(rows))
        return counts

    def queue_depth(self) -> int:
        """Number of jobs still waiting or running."""
        counts = self.counts()
        return counts["queued"] + counts["running"]

    # -- crash recovery -------------------------------------------------------
    def recover(self) -> int:
        """Requeue jobs left ``running`` by a killed daemon; returns how many.

        Partial results of the interrupted run are dropped, so the rerun
        starts from envelope zero — exactly-once results per completion,
        never a duplicate row.

        Recovery assumes it runs while no other daemon is draining this
        database (the one-daemon-per-data-directory deployment): a
        ``running`` job cannot be distinguished from one a *live* peer
        is executing right now, so recovering next to an active peer
        would requeue — and duplicate — its in-flight work.
        """
        with self._lock:
            self._execute("BEGIN IMMEDIATE")
            try:
                rows = self._execute(
                    "SELECT id FROM jobs WHERE state = 'running'").fetchall()
                for (job_id,) in rows:
                    self._execute(
                        "DELETE FROM job_results WHERE job_id = ?", (job_id,))
                    self._execute(
                        "UPDATE jobs SET state = 'queued', started = NULL, "
                        "fanout = NULL WHERE id = ?", (job_id,))
            except BaseException:
                self._rollback()
                raise
            self._execute("COMMIT")
            return len(rows)


__all__ = [
    "JOB_STATES",
    "JOBS_DATABASE_NAME",
    "Job",
    "JobStore",
    "TERMINAL_STATES",
]
