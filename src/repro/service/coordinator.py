"""Sharded scatter-gather serving: the cluster coordinator daemon.

A :class:`ClusterCoordinator` scales the analysis service past one
process without changing a single response byte.  It owns no corpus and
runs no analyzers; instead it partitions the corpus across N worker
daemons (each a plain :class:`~repro.service.server.AnalysisService`) by
consistent hashing on document id (:mod:`repro.service.hashring`), fans
every submitted job out to all shards, and scatter-gathers the partial
result envelopes back into one stream.

The merge is deterministic by construction, which is what makes a
multi-shard deployment *byte-for-byte testable* against a single node:

* every shard runs the identical job (same sources, same analyses), so
  the per-shard envelope streams are positionally aligned — envelope
  ``i`` of every shard describes the same ``(analyzer, contract_id)``;
* resident-index ``ccd`` payloads are the only corpus-dependent part;
  each shard reports the matches its slice of the corpus contributes,
  and the union re-sorted by the canonical match key
  ``(-similarity, str(document_id))`` — the exact ordering
  ``MatchPipeline.match`` applies on a single node — reproduces the
  unpartitioned payload;
* every other envelope (``ccc``, ``validate``, non-resident ``ccd``) is
  corpus-independent, identical on every shard, and passed through
  verbatim from the first live shard;
* re-encoding goes through :func:`repro.api.envelope.canonical_json`,
  whose fixed-point property (``canonical_json(json.loads(line)) ==
  line``) guarantees the merged bytes match a single-node daemon's.

Durability mirrors the single-node daemon: jobs live in the same
:class:`~repro.service.jobstore.JobStore` (rows gain fan-out
bookkeeping), so a coordinator killed mid-fan-out requeues the job on
restart and re-fans it out from scratch.  A worker that dies mid-job is
polled through its restart (its own store requeues the sub-job); a
worker that stays down past ``shard_timeout`` is reported in the job's
``fanout.degraded`` list — the job completes with the surviving shards'
results instead of hanging or silently pretending nothing is missing.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import traceback
from dataclasses import dataclass
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.api.envelope import canonical_json
from repro.api.registry import REGISTRY
from repro.core.persistence import DEFAULT_BUSY_TIMEOUT_SECONDS, retry_on_busy
from repro.service.client import ServiceClient, ServiceError
from repro.service.hashring import DEFAULT_RING_REPLICAS, HashRing, partition
from repro.service.jobstore import (
    DEFAULT_BATCH_AGING,
    JOBS_DATABASE_NAME,
    Job,
    JobStore,
)
from repro.service.delta import DeltaError, resolve_ingest_documents
from repro.service.scheduler import ReadWriteLock
from repro.service.server import (
    QUERIES_FILE_NAME,
    ServiceValidationError,
    _handler_class,
    _JsonRequestHandler,
    custom_queries_payload,
    load_custom_queries,
    register_custom_query,
    validate_document_ids,
    validate_job_request,
    validate_priority,
    validate_sources,
)
from repro.service.workloads import (
    ROUTES as WORKLOAD_ROUTES,
    WORKLOADS,
    WorkloadError,
    validate_workload_request,
)

#: every HTTP route the coordinator serves — kept in lockstep with
#: ``docs/service.md`` by ``tools/check_api.py``; the workload-engine
#: routes ride along from ``workloads.py`` exactly like the single node
ROUTES = tuple(sorted((
    ("GET", "/v1/cluster"),
    ("GET", "/v1/corpus"),
    ("GET", "/v1/healthz"),
    ("GET", "/v1/jobs"),
    ("GET", "/v1/jobs/{id}"),
    ("GET", "/v1/stats"),
    ("POST", "/v1/cluster/rebalance"),
    ("POST", "/v1/corpus"),
    ("POST", "/v1/jobs"),
) + WORKLOAD_ROUTES))

#: file name of the coordinator's routing journal inside its data dir
CORPUS_DATABASE_NAME = "corpus.sqlite"


def default_shard_names(count: int) -> Tuple[str, ...]:
    """Stable shard names by worker position (``shard-0``, ``shard-1``, ...).

    Names — not URLs — go on the hash ring, so a worker restarted on a
    new ephemeral port keeps its corpus slice.  Positional naming means
    the worker *order* is the identity: append new workers at the end.
    """
    return tuple(f"shard-{index}" for index in range(count))


# -- deterministic scatter-gather merge ---------------------------------------
def canonical_match_key(match: dict) -> tuple:
    """Sort key of one wire-form ccd match — the single-node ordering.

    ``MatchPipeline.match`` sorts ``(-similarity, str(document_id))``;
    the key is a pure function of the match itself, so any partition of
    a payload can be re-sorted back into the unpartitioned order.
    """
    return (-match["similarity"], str(match["document_id"]))


def merge_match_payloads(partitions: Iterable[Sequence[dict]]) -> list:
    """Union per-shard ccd payload slices back into canonical order."""
    merged = [match for part in partitions for match in part]
    merged.sort(key=canonical_match_key)
    return merged


def merge_shard_results(
    shard_lines: Sequence[Sequence[str]],
    scatter_analyses: Iterable[str] = ("ccd",),
) -> List[str]:
    """Merge aligned per-shard canonical envelope streams into one.

    ``shard_lines`` holds one list of canonical-JSON envelope lines per
    live shard, all for the *same* job, in the store's result order.
    Envelopes of analyzers in ``scatter_analyses`` carry partitioned
    payloads (one slice per shard) and are merged via
    :func:`merge_match_payloads`; everything else is corpus-independent,
    identical across shards, and passed through byte-verbatim from the
    first shard.  Raises :class:`ValueError` on mis-aligned streams.
    """
    shard_lines = [list(lines) for lines in shard_lines]
    if not shard_lines:
        return []
    length = len(shard_lines[0])
    if any(len(lines) != length for lines in shard_lines):
        raise ValueError("shard result streams have different lengths")
    scatter = set(scatter_analyses)
    merged = []
    for position in range(length):
        primary = json.loads(shard_lines[0][position])
        # a null payload (unanalyzable source) is corpus-independent and
        # identical on every shard — pass it through, never merge to []
        if (primary["analyzer"] not in scatter or primary["payload"] is None
                or len(shard_lines) == 1):
            merged.append(shard_lines[0][position])
            continue
        partitions = []
        for lines in shard_lines:
            envelope = json.loads(lines[position])
            if (envelope["analyzer"] != primary["analyzer"]
                    or envelope["contract_id"] != primary["contract_id"]):
                raise ValueError(
                    f"shard result streams mis-aligned at position {position}")
            partitions.append(envelope["payload"] or [])
        primary["payload"] = merge_match_payloads(partitions)
        merged.append(canonical_json(primary))
    return merged


# -- the durable routing journal ----------------------------------------------
class CorpusJournal:
    """Durable ``document id -> (source, shard)`` routing journal.

    Workers hold fingerprints, not sources, so rebalancing a document to
    another shard needs its original source back — the coordinator keeps
    it here (one SQLite database in its data directory), alongside the
    shard each id was routed to.  Ids are stored as their JSON encoding
    so string and integer ids can never collide.
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS documents (
        id     TEXT PRIMARY KEY,
        source TEXT NOT NULL,
        shard  TEXT NOT NULL
    );
    """

    def __init__(self, path: Union[str, Path],
                 busy_timeout_seconds: float = DEFAULT_BUSY_TIMEOUT_SECONDS):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None)
        self._connection.executescript(self._SCHEMA)
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute(
            f"PRAGMA busy_timeout={int(busy_timeout_seconds * 1000)}")

    def close(self) -> None:
        """Close the database connection (idempotent)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def _execute(self, sql: str, parameters: tuple = ()):
        if self._connection is None:
            raise RuntimeError("CorpusJournal is closed")
        return retry_on_busy(lambda: self._connection.execute(sql, parameters))

    def record(self, document_id: Hashable, source: str, shard: str) -> None:
        """Remember (or update) one routed document."""
        with self._lock:
            self._execute(
                "REPLACE INTO documents (id, source, shard) VALUES (?, ?, ?)",
                (json.dumps(document_id), source, shard))

    def reassign(self, document_id: Hashable, shard: str) -> None:
        """Move one journaled document to another shard."""
        with self._lock:
            self._execute("UPDATE documents SET shard = ? WHERE id = ?",
                          (shard, json.dumps(document_id)))

    def forget(self, document_id: Hashable) -> None:
        """Drop one document from the journal (idempotent)."""
        with self._lock:
            self._execute("DELETE FROM documents WHERE id = ?",
                          (json.dumps(document_id),))

    def assignments(self) -> Dict[Hashable, str]:
        """Every journaled id mapped to its recorded shard."""
        with self._lock:
            rows = self._execute("SELECT id, shard FROM documents").fetchall()
        return {json.loads(raw_id): shard for raw_id, shard in rows}

    def sources(self, document_ids: Iterable[Hashable]) -> List[Tuple[Hashable, str]]:
        """``(id, source)`` pairs of the given journaled ids, in id order."""
        wanted = {json.dumps(document_id) for document_id in document_ids}
        with self._lock:
            rows = self._execute("SELECT id, source FROM documents").fetchall()
        pairs = [(json.loads(raw_id), source)
                 for raw_id, source in rows if raw_id in wanted]
        pairs.sort(key=lambda pair: str(pair[0]))
        return pairs

    def count(self) -> int:
        """How many documents the journal holds."""
        with self._lock:
            return self._execute("SELECT COUNT(*) FROM documents").fetchone()[0]

    def per_shard_counts(self) -> Dict[str, int]:
        """Documents per shard, as recorded."""
        with self._lock:
            rows = self._execute(
                "SELECT shard, COUNT(*) FROM documents GROUP BY shard").fetchall()
        return dict(rows)


# -- the coordinator daemon ---------------------------------------------------
@dataclass(frozen=True)
class CoordinatorConfig:
    """Typed configuration of a :class:`ClusterCoordinator` daemon."""

    #: directory holding ``jobs.sqlite`` and ``corpus.sqlite``
    data_dir: str = "repro-coordinator"
    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral free port
    port: int = 8740
    #: worker daemon base URLs, in shard order (the order is identity:
    #: ``workers[i]`` serves ring node ``shard-i`` across restarts)
    workers: Tuple[str, ...] = ()
    #: optional stable shard names overriding the positional default
    shard_names: Tuple[str, ...] = ()
    #: virtual ring points per shard
    replicas: int = DEFAULT_RING_REPLICAS
    #: per-request socket timeout towards workers
    request_timeout: float = 60.0
    #: refused-connection retry budget towards workers (rides out a
    #: worker daemon's startup or restart)
    connect_timeout: float = 10.0
    #: how long one fan-out waits for its slowest shard before the
    #: missing shards are declared degraded and the job completes
    shard_timeout: float = 300.0
    #: fan-out queue poll interval
    poll_interval: float = 0.05
    #: concurrent fan-out worker threads (1 = strict FIFO)
    fanout_workers: int = 1
    #: emit one access-log line per request to stderr
    log_requests: bool = False
    #: HTTP front end: ``threaded`` or ``asyncio`` (gateway + admission)
    frontend: str = "threaded"
    #: asyncio gateway: queued+running jobs beyond this are shed with 503
    max_pending_jobs: int = 256
    #: asyncio gateway: open connections beyond this are shed with 503
    max_connections: int = 1024
    #: asyncio gateway: path of a TOML/JSON per-tenant quota file
    tenant_quotas: Optional[str] = None
    #: asyncio gateway: coalesce concurrent identical job submissions
    coalesce: bool = True
    #: interactive claims a waiting batch job tolerates before it is served
    batch_aging: int = DEFAULT_BATCH_AGING

    def resolved_names(self) -> Tuple[str, ...]:
        """Shard names, defaulted positionally and validated."""
        names = tuple(self.shard_names) or default_shard_names(len(self.workers))
        if len(names) != len(self.workers):
            raise ValueError(
                f"{len(self.workers)} workers but {len(names)} shard names")
        if len(set(names)) != len(names):
            raise ValueError("shard names must be unique")
        return names


class ClusterCoordinator:
    """The scatter-gather front of an N-shard analysis cluster.

    Lifecycle mirrors :class:`~repro.service.server.AnalysisService`:
    constructing performs crash recovery on the coordinator's own job
    store, :meth:`start` binds the HTTP server and spawns the fan-out
    workers; use as a context manager or pair :meth:`start`/:meth:`stop`.
    """

    def __init__(self, config: CoordinatorConfig):
        if not config.workers:
            raise ValueError("a coordinator needs at least one worker URL")
        if config.frontend not in ("threaded", "asyncio"):
            raise ValueError(
                f"frontend must be 'threaded' or 'asyncio', "
                f"not {config.frontend!r}")
        self.config = config
        names = config.resolved_names()
        #: shard name -> worker base URL, in configuration order
        self.shards: Dict[str, str] = dict(zip(names, config.workers))
        self.ring = HashRing(names, replicas=config.replicas)
        self.data_dir = Path(config.data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.started_at = time.time()
        self.jobstore = JobStore(self.data_dir / JOBS_DATABASE_NAME,
                                 batch_aging=config.batch_aging)
        #: jobs requeued from a previous coordinator's crash, for /v1/stats
        self.recovered_jobs = self.jobstore.recover()
        self.journal = CorpusJournal(self.data_dir / CORPUS_DATABASE_NAME)
        #: per-shard clients that ride out worker restarts
        self.clients = {
            name: ServiceClient(url, timeout=config.request_timeout,
                                connect_timeout=config.connect_timeout)
            for name, url in self.shards.items()}
        #: per-shard clients that fail fast (health probes, fan-out polls)
        self.probes = {
            name: ServiceClient(url, timeout=config.request_timeout)
            for name, url in self.shards.items()}
        self._work_lock = ReadWriteLock()
        self.jobs_completed = 0
        self.jobs_failed = 0
        self._threads: List[threading.Thread] = []
        self._stop_event = threading.Event()
        self._wakeup = threading.Condition()
        self._idle = threading.Condition()
        self._running_jobs = 0
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._gateway = None  # AsyncGateway when frontend == "asyncio"
        self._stop_requested = threading.Event()
        self._stopped = False
        self.queries_path = self.data_dir / QUERIES_FILE_NAME
        #: custom queries reloaded from a previous coordinator's registrations
        self.reloaded_queries = load_custom_queries(self.queries_path)

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Bind the HTTP front end and start the fan-out workers (idempotent)."""
        if self._httpd is not None or self._gateway is not None:
            return
        for index in range(max(1, self.config.fanout_workers)):
            thread = threading.Thread(
                target=self._fanout_loop, name=f"repro-fanout-{index}",
                daemon=True)
            thread.start()
            self._threads.append(thread)
        if self.config.frontend == "asyncio":
            from repro.service.gateway import AsyncGateway, GatewayConfig
            self._gateway = AsyncGateway(
                self, GatewayConfig.from_service_config(self.config))
            self._gateway.start()
            return
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port),
            _handler_class(self, base=_CoordinatorRequestHandler))
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-coordinator-http",
            daemon=True)
        self._http_thread.start()

    @property
    def port(self) -> int:
        """The actually bound TCP port (resolves ``port=0`` requests)."""
        if self._gateway is not None:
            return self._gateway.port
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self.config.port

    @property
    def url(self) -> str:
        """Base URL of the running coordinator."""
        return f"http://{self.config.host}:{self.port}"

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to return (signal-handler safe)."""
        self._stop_requested.set()

    def stop(self) -> None:
        """Graceful shutdown: HTTP first, then fan-out, then state."""
        if self._stopped:
            return
        self._stopped = True
        self._stop_requested.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join()
            self._http_thread = None
        if self._gateway is not None:
            self._gateway.stop()
            self._gateway = None
        self._stop_event.set()
        with self._wakeup:
            self._wakeup.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads = []
        self.jobstore.close()
        self.journal.close()

    def serve_forever(self) -> None:
        """Run until :meth:`request_stop` (or Ctrl-C), then shut down."""
        self.start()
        try:
            self._stop_requested.wait()
        except KeyboardInterrupt:
            pass
        self.stop()

    def __enter__(self) -> "ClusterCoordinator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- operations -----------------------------------------------------------
    def submit(self, sources, analyses, options: Optional[dict] = None,
               priority: Optional[str] = None,
               tenant: Optional[str] = None) -> Job:
        """Validate and enqueue a job for fan-out across every shard.

        Parameters
        ----------
        sources:
            ``[[id, source], ...]`` wire pairs to analyze.
        analyses:
            Analyzer ids to run, in order.
        options:
            Per-analyzer option mapping.
        priority:
            Scheduling lane (``interactive`` or ``batch``; the default);
            forwarded to every shard sub-job at fan-out time.
        tenant:
            Tenant label recorded with the job (``X-Repro-Tenant``).
        """
        sources, analyses, options = validate_job_request(
            sources, analyses, options, REGISTRY)
        priority = validate_priority(priority)
        job = self.jobstore.submit(sources, analyses, options,
                                   priority=priority, tenant=tenant)
        with self._wakeup:
            self._wakeup.notify_all()
        return job

    def submit_workload(self, body, tenant: Optional[str] = None) -> Job:
        """Validate and enqueue one workload job for fan-out across shards.

        The descriptor is validated against the same registry the
        workers use (decomposition is a pure function of the params, so
        both sides agree on the chunk DAG); the fan-out loop then farms
        chunk subsets out to the shards and merges their chunk rows.
        """
        try:
            descriptor = validate_workload_request(body)
        except WorkloadError as error:
            raise ServiceValidationError(str(error)) from error
        priority = validate_priority(body.get("priority"))
        job = self.jobstore.submit(
            [], [], priority=priority, tenant=tenant, workload=descriptor)
        with self._wakeup:
            self._wakeup.notify_all()
        return job

    def cancel_job(self, job_id: int) -> Optional[str]:
        """Cancel one job; returns its (possibly unchanged) state.

        Queued jobs are dropped immediately.  A running workload
        fan-out observes the flag at its next chunk-poll boundary,
        cancels its shard sub-jobs, and finishes ``cancelled`` with the
        completed chunk rows kept for a later resume.
        """
        return self.jobstore.cancel(job_id)

    def resume_workload(self, job_id: int) -> Job:
        """Requeue a failed/cancelled workload fan-out, reusing done chunks."""
        job = self.jobstore.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if job.workload is None:
            raise ServiceValidationError(
                f"job {job_id} is not a workload job")
        try:
            job = self.jobstore.requeue(job_id)
        except ValueError as error:
            raise ServiceValidationError(str(error)) from error
        with self._wakeup:
            self._wakeup.notify_all()
        return job

    def register_query_spec(self, spec) -> dict:
        """Register a custom DSL query cluster-wide.

        The spec is validated and persisted on the coordinator, then
        broadcast to every shard — each worker persists it in its own
        data dir, so the query survives worker restarts too.  A shard
        that cannot be reached fails the request (HTTP 502); a retry
        converges because registration is replace-on-reregister.
        """
        response = register_custom_query(spec, self.queries_path)
        for name in sorted(self.shards):
            self.clients[name].register_query(response["query"])
        response["shards"] = sorted(self.shards)
        return response

    def queries_payload(self) -> dict:
        """The ``GET /v1/queries`` body: every active ccc query."""
        return custom_queries_payload()

    def ingest(self, documents, remove=()) -> dict:
        """Route documents to their ring-assigned shards and journal them.

        Each document goes to exactly one worker (consistent hashing on
        its id); removals are routed to the shard the journal recorded.
        A worker that cannot be reached fails the whole request (mapped
        to HTTP 502) — shards already written stay written, and a retry
        converges because routing is deterministic and worker ingest is
        replace-on-reingest.
        """
        remove = validate_document_ids(remove, what="remove")
        if documents is None and remove:
            documents = []
        else:
            # delta objects (diffs, base_version guards) resolve against
            # the journaled sources *here*, so workers always receive
            # full documents regardless of how the client phrased them
            try:
                documents = resolve_ingest_documents(
                    documents, self._journal_source)
            except DeltaError as error:
                raise ServiceValidationError(str(error)) from error
        documents = list({document_id: (document_id, source)
                          for document_id, source in documents}.values())
        with self._work_lock.write():  # exclusive: no fan-out during routing
            recorded = self.journal.assignments()
            remove_batches: Dict[str, List[Hashable]] = {}
            for document_id in remove:
                shard = recorded.get(document_id, self.ring.owner(document_id))
                remove_batches.setdefault(shard, []).append(document_id)
            batches = partition(documents, self.ring)
            ingested = 0
            unchanged = 0
            rejected: list = []
            removed: list = []
            routed: Dict[str, int] = {}
            for name in sorted(set(batches) | set(remove_batches)):
                batch = batches.get(name, [])
                summary = self.clients[name].ingest(
                    documents=[list(pair) for pair in batch] or None,
                    remove=remove_batches.get(name) or None)
                ingested += summary["ingested"]
                unchanged += summary.get("unchanged", 0)
                rejected.extend(summary["rejected"])
                removed.extend(summary.get("removed", []))
                routed[name] = len(batch)
                rejected_here = set(summary["rejected"])
                for document_id, source in batch:
                    if document_id not in rejected_here:
                        self.journal.record(document_id, source, name)
            for document_id in removed:
                self.journal.forget(document_id)
        return {
            "ingested": ingested,
            "rejected": rejected,
            "removed": removed,
            "unchanged": unchanged,
            "documents": self.journal.count(),
            "routed": routed,
        }

    def _journal_source(self, document_id: Hashable) -> Optional[str]:
        """The journaled source of one document (delta-ingest base)."""
        pairs = self.journal.sources([document_id])
        return pairs[0][1] if pairs else None

    def rebalance(self) -> dict:
        """Move every document whose ring owner changed; touch nothing else.

        Run after the worker set changes (e.g. the coordinator was
        restarted with one more worker): each moved document is
        re-ingested on its new shard from the journaled source, then
        removed from its old shard.  Documents whose owner is unchanged
        are not re-sent anywhere — consistent hashing keeps the moved
        set to roughly ``1/N`` of the corpus.
        """
        with self._work_lock.write():
            assignments = self.journal.assignments()
            moves: Dict[Hashable, Tuple[str, str]] = {}
            for document_id, recorded_shard in assignments.items():
                target = self.ring.owner(document_id)
                if target != recorded_shard:
                    moves[document_id] = (recorded_shard, target)
            additions: Dict[str, List[Hashable]] = {}
            removals: Dict[str, List[Hashable]] = {}
            for document_id, (old, new) in moves.items():
                additions.setdefault(new, []).append(document_id)
                removals.setdefault(old, []).append(document_id)
            # ingest on the new owner first, then retire from the old:
            # no moment where a document is on no shard at all
            for name in sorted(additions):
                pairs = self.journal.sources(additions[name])
                self.clients[name].ingest(
                    documents=[list(pair) for pair in pairs])
            for name in sorted(removals):
                self.clients[name].ingest(remove=sorted(
                    removals[name], key=str))
            for document_id, (_old, new) in moves.items():
                self.journal.reassign(document_id, new)
        return {
            "moved": sorted(moves, key=str),
            "documents": self.journal.count(),
            "routed": self.journal.per_shard_counts(),
        }

    def corpus(self) -> dict:
        """The ``GET /v1/corpus`` payload: journaled routing by shard."""
        assignments = self.journal.assignments()
        by_shard: Dict[str, list] = {name: [] for name in self.shards}
        for document_id, shard in assignments.items():
            by_shard.setdefault(shard, []).append(document_id)
        for ids in by_shard.values():
            ids.sort(key=str)
        return {
            "count": len(assignments),
            "documents": sorted(assignments, key=str),
            "shards": by_shard,
        }

    def health(self) -> dict:
        """The ``/v1/healthz`` payload, aggregated across every shard."""
        shards = {}
        degraded = []
        for name in sorted(self.shards):
            try:
                payload = self.probes[name].healthz()
                shards[name] = {"status": payload.get("status", "ok"),
                                "queue_depth": payload.get("queue_depth")}
            except (ServiceError, OSError) as error:
                shards[name] = {"status": "unreachable", "error": str(error)}
                degraded.append(name)
        return {
            "status": "degraded" if degraded else "ok",
            "role": "coordinator",
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": self.jobstore.queue_depth(),
            "shards": shards,
            "degraded": degraded,
        }

    def stats(self) -> dict:
        """The ``/v1/stats`` payload: own queue plus per-shard worker stats."""
        shards = {}
        for name in sorted(self.shards):
            try:
                shards[name] = self.probes[name].stats()
            except (ServiceError, OSError) as error:
                shards[name] = {"error": str(error)}
        return {
            "role": "coordinator",
            "uptime_seconds": time.time() - self.started_at,
            "jobs": self.jobstore.counts(),
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "recovered_jobs": self.recovered_jobs,
            "documents": self.journal.count(),
            "routed": self.journal.per_shard_counts(),
            "ring": {"shards": len(self.ring), "replicas": self.ring.replicas},
            "shards": shards,
        }

    def cluster_status(self) -> dict:
        """The ``GET /v1/cluster`` payload: topology, health, routing."""
        routed = self.journal.per_shard_counts()
        workers = {}
        degraded = []
        for name in sorted(self.shards):
            entry = {"url": self.shards[name],
                     "routed_documents": routed.get(name, 0)}
            try:
                health = self.probes[name].healthz()
                entry["status"] = health.get("status", "ok")
                entry["queue_depth"] = health.get("queue_depth")
                entry["indexed_documents"] = self.probes[name].corpus()["count"]
            except (ServiceError, OSError) as error:
                entry["status"] = "unreachable"
                entry["error"] = str(error)
                degraded.append(name)
            workers[name] = entry
        return {
            "status": "degraded" if degraded else "ok",
            "workers": workers,
            "degraded": degraded,
            "documents": self.journal.count(),
            "ring": {"shards": len(self.ring), "replicas": self.ring.replicas},
            "jobs": self.jobstore.counts(),
        }

    # -- fan-out --------------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> bool:
        """Block until the job queue is empty and no fan-out is running."""
        deadline = time.monotonic() + timeout
        while True:
            with self._idle:
                if self._running_jobs == 0 and self.jobstore.queue_depth() == 0:
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(min(remaining, self.config.poll_interval * 4))

    def _fanout_loop(self) -> None:
        while not self._stop_event.is_set():
            job = self.jobstore.claim_next()
            if job is None:
                with self._wakeup:
                    self._wakeup.wait(self.config.poll_interval)
                continue
            with self._idle:
                self._running_jobs += 1
            try:
                with self._work_lock.read():  # never fan out mid-rebalance
                    self._run_fanout(job)
            except Exception as error:  # noqa: BLE001 — keep the loop alive
                traceback.print_exc()
                self.jobstore.finish(
                    job.job_id, "failed",
                    error=f"{type(error).__name__}: {error}")
                self.jobs_failed += 1
            finally:
                with self._idle:
                    self._running_jobs -= 1
                    self._idle.notify_all()

    def _scatter_analyses(self, job: Job) -> set:
        """Which of the job's analyses carry corpus-partitioned payloads.

        Only resident-index ``ccd`` depends on which shard holds which
        document; a job opting out via ``{"ccd": {"resident": false}}``
        self-indexes its submitted sources identically on every shard.
        """
        scatter = set()
        if "ccd" in job.analyses:
            ccd_options = job.options.get("ccd") or {}
            if ccd_options.get("resident", True):
                scatter.add("ccd")
        return scatter

    def _run_fanout(self, job: Job) -> None:
        """Scatter one claimed job to every shard and gather the merge."""
        if job.workload is not None:
            self._run_workload_fanout(job)
            return
        names = sorted(self.shards)
        submitted: Dict[str, int] = {}
        degraded: List[str] = []
        for name in names:
            try:
                remote = self.clients[name].submit(
                    job.corpus, list(job.analyses), job.options or None,
                    priority=job.priority, tenant=job.tenant)
            except ServiceError as error:
                if 400 <= error.status < 500:
                    # a deterministic rejection: every shard would refuse
                    # the same way, so the job fails rather than degrades
                    self.jobstore.set_fanout(
                        job.job_id, {"shards": submitted, "degraded": degraded})
                    self.jobstore.finish(job.job_id, "failed", error=str(error))
                    self.jobs_failed += 1
                    return
                degraded.append(name)
                continue
            except OSError:
                degraded.append(name)
                continue
            submitted[name] = remote["id"]
        self.jobstore.set_fanout(
            job.job_id, {"shards": submitted, "degraded": degraded})

        deadline = time.monotonic() + self.config.shard_timeout
        shard_lines: List[List[str]] = []
        for name in names:
            if name not in submitted:
                continue
            outcome, value = self._await_shard(name, submitted[name], deadline)
            if outcome == "failed":
                self.jobstore.set_fanout(
                    job.job_id,
                    {"shards": submitted, "degraded": sorted(set(degraded))})
                self.jobstore.finish(
                    job.job_id, "failed", error=f"shard {name}: {value}")
                self.jobs_failed += 1
                return
            if outcome == "unreachable":
                degraded.append(name)
                continue
            shard_lines.append(value)

        degraded = sorted(set(degraded))
        self.jobstore.set_fanout(
            job.job_id, {"shards": submitted, "degraded": degraded})
        if not shard_lines:
            self.jobstore.finish(
                job.job_id, "failed",
                error=f"all shards unreachable: {', '.join(degraded)}")
            self.jobs_failed += 1
            return
        merged = merge_shard_results(shard_lines, self._scatter_analyses(job))
        for seq, line in enumerate(merged):
            self.jobstore.append_result(job.job_id, seq, line)
        self.jobstore.finish(job.job_id, "done")
        self.jobs_completed += 1

    # -- workload fan-out ------------------------------------------------------
    def _live_shards(self) -> List[str]:
        """The shard names answering their health probe right now."""
        live = []
        for name in sorted(self.shards):
            try:
                self.probes[name].healthz()
                live.append(name)
            except (ServiceError, OSError):
                continue
        return live

    def _cancel_workload_fanout(self, job: Job, submitted: Dict[str, int]) -> None:
        """Honour a cancel request: stop shard sub-jobs, keep done chunks."""
        for name in sorted(submitted):
            try:
                self.clients[name].cancel(submitted[name])
            except (ServiceError, OSError):
                pass  # the shard is gone; its sub-job dies with it
        self.jobstore.cancel_pending_chunks(job.job_id)
        self.jobstore.finish(job.job_id, "cancelled")

    def _run_workload_fanout(self, job: Job) -> None:
        """Farm one workload's chunk DAG across the shards and merge.

        The chunk grid is decomposed locally (decomposition is a pure
        function of the validated params, so coordinator and workers
        agree on indices), pending chunks are round-robined over the
        reachable shards as restricted sub-workloads, and finished chunk
        rows are copied back verbatim — the stored canonical-JSON
        strings — so the merged report is byte-identical to a
        single-node run.  One redistribution round re-fans the chunks of
        a shard that died mid-run to the survivors; chunks still pending
        after that fail the job (resumable: done rows are kept).
        """
        descriptor = job.workload or {}
        kind = descriptor.get("kind")
        params = descriptor.get("params") or {}
        workload = WORKLOADS.get(kind)
        specs = workload.decompose(params)
        self.jobstore.add_chunks(
            job.job_id, (canonical_json(spec) for spec in specs))
        restrict = descriptor.get("chunks")
        pending = [chunk for chunk, _spec
                   in self.jobstore.pending_chunks(job.job_id)
                   if restrict is None or chunk in restrict]
        submitted: Dict[str, int] = {}
        degraded: List[str] = []
        for round_index in range(2):  # first pass + one redistribution
            if not pending:
                break
            if self.jobstore.is_cancel_requested(job.job_id):
                self._cancel_workload_fanout(job, submitted)
                return
            live = self._live_shards()
            if not live:
                break
            assignment: Dict[str, List[int]] = {}
            for position, chunk in enumerate(pending):
                assignment.setdefault(
                    live[position % len(live)], []).append(chunk)
            submitted = {}
            for name in sorted(assignment):
                try:
                    remote = self.clients[name].submit_workload(
                        kind, params=params, chunks=assignment[name],
                        priority=job.priority, tenant=job.tenant)
                except ServiceError as error:
                    if 400 <= error.status < 500:
                        # deterministic rejection: every shard would
                        # refuse the same way, so fail rather than degrade
                        self.jobstore.finish(
                            job.job_id, "failed", error=str(error))
                        self.jobs_failed += 1
                        return
                    degraded.append(name)
                    continue
                except OSError:
                    degraded.append(name)
                    continue
                submitted[name] = remote["id"]
            self.jobstore.set_fanout(job.job_id, {
                "shards": submitted, "degraded": sorted(set(degraded)),
                "round": round_index + 1, "chunks": len(pending)})
            deadline = time.monotonic() + self.config.shard_timeout
            for name in sorted(submitted):
                outcome, value = self._await_workload_shard(
                    job, name, submitted[name], deadline)
                if outcome == "cancelled":
                    self._cancel_workload_fanout(job, submitted)
                    return
                if outcome == "failed":
                    self.jobstore.finish(
                        job.job_id, "failed", error=f"shard {name}: {value}")
                    self.jobs_failed += 1
                    return
                if outcome == "unreachable":
                    degraded.append(name)
            pending = [chunk for chunk, _spec
                       in self.jobstore.pending_chunks(job.job_id)
                       if restrict is None or chunk in restrict]
        degraded = sorted(set(degraded))
        self.jobstore.set_fanout(
            job.job_id, {"shards": submitted, "degraded": degraded})
        if pending:
            self.jobstore.finish(
                job.job_id, "failed",
                error=f"{len(pending)} chunk(s) never completed; "
                      f"degraded shards: {', '.join(degraded) or 'none'}")
            self.jobs_failed += 1
            return
        if restrict is None:
            rows = self.jobstore.chunks(job.job_id)
            results = [json.loads(row["result"]) for row in rows]
            report = workload.merge(params, results)
            self.jobstore.append_result(job.job_id, 0, canonical_json(report))
        self.jobstore.finish(job.job_id, "done")
        self.jobs_completed += 1

    def _await_workload_shard(self, job: Job, name: str, remote_id: int,
                              deadline: float) -> Tuple[str, Optional[str]]:
        """Poll one shard's restricted sub-workload and copy its chunk rows.

        Returns ``("done", None)`` after copying the finished rows into
        the coordinator's chunk table (result strings verbatim, so the
        bytes survive the hop), ``("failed", error)`` on a deterministic
        chunk failure, ``("cancelled", None)`` when this coordinator job
        was cancelled mid-poll, or ``("unreachable", None)`` when the
        worker stays down (or its sub-job vanished) past ``deadline`` —
        the chunks stay pending for the redistribution round.
        """
        probe = self.probes[name]
        while True:
            if self.jobstore.is_cancel_requested(job.job_id):
                return "cancelled", None
            try:
                status = probe.workload(remote_id)
                state = status["state"]
                if state == "done":
                    rows = probe.workload(remote_id, chunks=True)["chunks"]
                    for row in rows:
                        if row["state"] != "done":
                            continue
                        self.jobstore.start_chunk(job.job_id, row["chunk"])
                        self.jobstore.finish_chunk(
                            job.job_id, row["chunk"], row["result"])
                    return "done", None
                if state == "failed":
                    return "failed", status.get("error")
                if state == "cancelled":
                    # cancelled on the worker side (not by us): treat the
                    # shard as lost so its chunks get redistributed
                    return "unreachable", None
            except ServiceError as error:
                if error.status == 404:
                    return "unreachable", None
            except OSError:
                pass  # worker down or restarting; keep polling
            if self._stop_event.is_set() or time.monotonic() >= deadline:
                return "unreachable", None
            time.sleep(self.config.poll_interval)

    def _await_shard(self, name: str, remote_id: int,
                     deadline: float) -> Tuple[str, Optional[object]]:
        """Poll one shard's sub-job to completion.

        Returns ``("done", [canonical line, ...])``, ``("failed",
        error_message)`` for a deterministic analyzer failure, or
        ``("unreachable", None)`` when the worker stays down (or the
        sub-job vanished) past ``deadline``.  A worker that dies and
        comes back mid-poll is ridden out: its own job store requeues
        the sub-job on restart, so polling simply resumes.
        """
        probe = self.probes[name]
        while True:
            try:
                status = probe.job(remote_id, results=False)
                state = status["job"]["state"]
                if state == "done":
                    envelopes = probe.job(remote_id)["results"]
                    return "done", [canonical_json(envelope)
                                    for envelope in envelopes]
                if state == "failed":
                    return "failed", status["job"].get("error")
            except ServiceError as error:
                if error.status == 404:
                    # the sub-job is gone (e.g. the worker came back over
                    # an emptied data dir) — treat the shard as lost
                    return "unreachable", None
            except OSError:
                pass  # worker down or restarting; keep polling
            if self._stop_event.is_set() or time.monotonic() >= deadline:
                return "unreachable", None
            time.sleep(self.config.poll_interval)


class _CoordinatorRequestHandler(_JsonRequestHandler):
    """Routes ``/v1/*`` requests onto the bound :class:`ClusterCoordinator`."""

    service: ClusterCoordinator  # bound by _handler_class
    server_version = "repro-coordinator"

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        """Dispatch GET endpoints."""
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        query = parse_qs(url.query, keep_blank_values=True)
        if parts == ["v1", "healthz"]:
            self._send_json(200, self.service.health())
        elif parts == ["v1", "stats"]:
            self._send_json(200, self.service.stats())
        elif parts == ["v1", "cluster"]:
            self._send_json(200, self.service.cluster_status())
        elif parts == ["v1", "corpus"]:
            self._send_json(200, self.service.corpus())
        elif parts == ["v1", "jobs"]:
            self._get_jobs(query)
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            job = self._job_or_404(parts[2])
            if job is not None:
                self._get_job(job, query)
        elif not self._route_workload_get(parts, query):
            self._send_error_json(404, f"no such endpoint: GET {url.path}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        """Dispatch POST endpoints."""
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        payload = self._read_body()
        if payload is None:
            return
        try:
            if parts == ["v1", "jobs"]:
                job = self.service.submit(
                    payload.get("sources"), payload.get("analyses"),
                    payload.get("options"),
                    priority=payload.get("priority"),
                    tenant=self.headers.get("X-Repro-Tenant"))
                self._send_json(202, {"job": job.as_dict()})
            elif parts == ["v1", "corpus"]:
                self._send_json(200, self.service.ingest(
                    payload.get("documents"), payload.get("remove", ())))
            elif parts == ["v1", "cluster", "rebalance"]:
                self._send_json(200, self.service.rebalance())
            elif not self._route_workload_post(parts, payload):
                self._send_error_json(404, f"no such endpoint: POST {url.path}")
        except ServiceValidationError as error:
            self._send_error_json(400, str(error))
        except (ServiceError, OSError) as error:
            # a worker refused or died mid-routing: the cluster is the
            # broken dependency, so answer as a bad gateway
            self._send_error_json(502, f"shard unreachable: {error}")


__all__ = [
    "CORPUS_DATABASE_NAME",
    "ClusterCoordinator",
    "CoordinatorConfig",
    "CorpusJournal",
    "ROUTES",
    "canonical_match_key",
    "default_shard_names",
    "merge_match_payloads",
    "merge_shard_results",
]
