"""The worker pool draining the job queue through one resident session.

A :class:`Scheduler` owns a small pool of threads, each of which loops:
claim the oldest ``queued`` job (:meth:`~repro.service.jobstore.JobStore.claim_next`),
run it through the shared resident
:class:`~repro.api.session.AnalysisSession`, persist each envelope as it
completes, and mark the job ``done`` or ``failed``.  All jobs share the
session's single warm :class:`~repro.core.artifacts.ArtifactStore` and
loaded CCD index, which is the whole point of the daemon: the corpus is
parsed and indexed once per *process*, not once per request.

Jobs run through :meth:`AnalysisSession.run_iter` (the streaming entry
point over :meth:`Executor.imap_batches`), so envelopes land in the job
store incrementally — ``GET /v1/jobs/{id}/stream`` serves them while the
job is still running.

The default is one worker, which keeps job execution strictly FIFO.
More workers run jobs concurrently (the artifact store is thread-safe
and every job gets its own analyzer state); a shared
:class:`ReadWriteLock` coordinates them with corpus ingest — jobs are
*readers* of the resident index, ingest is the exclusive *writer*,
because appending to the live N-gram index while a clone query walks
its postings is not safe.
"""

from __future__ import annotations

import contextlib
import threading
import traceback
from typing import Callable, Optional

from repro.api.envelope import canonical_json
from repro.api.session import AnalysisSession
from repro.service.jobstore import Job, JobStore


class ReadWriteLock:
    """Many concurrent readers or one exclusive writer (writer-preferring).

    Scheduler workers hold the read side while running a job (they only
    *query* the resident index); corpus ingest holds the write side (it
    mutates the index).  Writers are preferred: once an ingest is
    waiting, new jobs queue behind it instead of starving it.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writing = False

    @contextlib.contextmanager
    def read(self):
        """Hold shared access for the duration of the ``with`` block."""
        with self._cond:
            self._cond.wait_for(
                lambda: not self._writing and not self._writers_waiting)
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @contextlib.contextmanager
    def write(self):
        """Hold exclusive access for the duration of the ``with`` block."""
        with self._cond:
            self._writers_waiting += 1
            try:
                self._cond.wait_for(
                    lambda: not self._writing and self._readers == 0)
                self._writing = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


class Scheduler:
    """Drain a :class:`~repro.service.jobstore.JobStore` through a session.

    Parameters
    ----------
    session:
        The resident analysis session every job runs through.
    jobstore:
        The persistent queue to drain.
    resolve_options:
        Optional hook mapping a claimed :class:`Job` to the options dict
        passed to ``run_iter`` — the service uses it to inject the
        resident clone-detector index into ``ccd`` jobs.
    workers:
        Worker thread count (default 1: strict FIFO execution; more
        workers run claimed jobs concurrently).
    poll_interval:
        Idle wait between queue polls; submissions also :meth:`notify`
        the pool so the wait is a fallback, not the latency floor.
    work_lock:
        The :class:`ReadWriteLock` coordinating jobs (readers) with
        corpus ingest (the writer); the service shares one instance
        between this pool and its ingest path.
    """

    def __init__(
        self,
        session: AnalysisSession,
        jobstore: JobStore,
        resolve_options: Optional[Callable[[Job], dict]] = None,
        workers: int = 1,
        poll_interval: float = 0.1,
        work_lock: Optional[ReadWriteLock] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.session = session
        self.jobstore = jobstore
        self.resolve_options = resolve_options
        self.workers = workers
        self.poll_interval = poll_interval
        self.work_lock = work_lock if work_lock is not None else ReadWriteLock()
        self._threads: list = []
        self._stop = threading.Event()
        self._wakeup = threading.Event()
        self._idle = threading.Condition()
        self._running_jobs = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        #: completed jobs per priority lane, for /v1/stats
        self.jobs_by_lane = {"interactive": 0, "batch": 0}

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{index}",
                daemon=True)
            thread.start()
            self._threads.append(thread)

    def notify(self) -> None:
        """Wake idle workers after a submission."""
        self._wakeup.set()

    def close(self) -> None:
        """Stop the pool and join every worker (idempotent, graceful).

        The job a worker is currently running finishes and is persisted;
        everything still queued stays ``queued`` for the next daemon.
        """
        self._stop.set()
        self._wakeup.set()
        for thread in self._threads:
            thread.join()
        self._threads = []

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- draining -------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and no job is running.

        Returns ``False`` on timeout.  Used by tests, the smoke harness,
        and ``repro submit --wait`` against an in-process service.
        """
        with self._idle:
            return self._idle.wait_for(
                lambda: self._running_jobs == 0 and self.jobstore.queue_depth() == 0,
                timeout=timeout)

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job = self.jobstore.claim_next()
            except RuntimeError:
                return  # store closed under us during shutdown
            except Exception:  # noqa: BLE001 - a worker must outlive sqlite hiccups
                # e.g. sqlite3.OperationalError after the busy retries are
                # exhausted: log, back off, and keep draining — a dead
                # worker would leave the daemon healthy-looking but inert
                traceback.print_exc()
                self._wakeup.wait(self.poll_interval)
                self._wakeup.clear()
                continue
            if job is None:
                self._wakeup.wait(self.poll_interval)
                self._wakeup.clear()
                continue
            with self._idle:
                self._running_jobs += 1
            try:
                with self.work_lock.read():
                    self._run_job(job)
            finally:
                with self._idle:
                    self._running_jobs -= 1
                    self._idle.notify_all()

    def _run_job(self, job: Job) -> None:
        """Run one claimed job; persist envelopes incrementally; finish it."""
        try:
            if job.workload is not None:
                self._run_workload(job)
                return
            if job.cancel_requested:
                # cancelled between claim and execution: honour it here,
                # before any envelope is computed
                self.jobstore.finish(job.job_id, "cancelled")
                return
            options = (self.resolve_options(job)
                       if self.resolve_options is not None else job.options)
            corpus = [tuple(pair) for pair in job.corpus]
            for seq, envelope in enumerate(self.session.run_iter(
                    corpus, analyses=list(job.analyses), options=options)):
                self.jobstore.append_result(
                    job.job_id, seq, canonical_json(envelope))
            self.jobstore.finish(job.job_id, "done")
            self.jobs_completed += 1
            if job.priority in self.jobs_by_lane:
                self.jobs_by_lane[job.priority] += 1
        except Exception as error:  # a failed job must never kill the worker
            self.jobs_failed += 1
            try:
                self.jobstore.finish(
                    job.job_id, "failed", error=f"{type(error).__name__}: {error}")
            except RuntimeError:
                pass  # store closed mid-shutdown; recovery requeues the job

    def _run_workload(self, job: Job) -> None:
        """Run one workload job chunk by chunk (see ``service.workloads``).

        A graceful pool shutdown mid-workload leaves the job ``running``
        (outcome ``paused``): crash recovery requeues it on the next
        start and the completed chunks are reused, exactly like a crash.
        """
        from repro.service.workloads import run_workload_job

        outcome = run_workload_job(
            job, self.jobstore, session=self.session,
            should_stop=self._stop.is_set)
        if outcome == "paused":
            return
        self.jobstore.finish(job.job_id, outcome)
        if outcome == "done":
            self.jobs_completed += 1
            if job.priority in self.jobs_by_lane:
                self.jobs_by_lane[job.priority] += 1


__all__ = ["ReadWriteLock", "Scheduler"]
