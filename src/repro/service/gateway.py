"""The asyncio gateway: event-loop HTTP front end with admission control.

:class:`AsyncGateway` is the high-concurrency alternative to the
``ThreadingHTTPServer`` front end of
:class:`~repro.service.server.AnalysisService` — hand-rolled HTTP/1.1
over :func:`asyncio.start_server` (stdlib only), with keep-alive and
chunked NDJSON streaming, speaking the existing ``/v1/*`` wire protocol
**byte-for-byte**: every response body is produced by the same payload
builders the threaded handlers use, and the stream endpoint emits the
identical chunk framing.  The :class:`~repro.service.jobstore.JobStore`
/ :class:`~repro.service.scheduler.Scheduler` contract underneath is
unchanged; the gateway fronts either an
:class:`~repro.service.server.AnalysisService` or a
:class:`~repro.service.coordinator.ClusterCoordinator` (detected by
duck-typing the coordinator's ``cluster_status`` operation) and is
selected per daemon with ``repro serve --frontend asyncio``.

What the event loop buys over a thread per connection is an explicit
**admission-control layer** — the daemon sheds load instead of hanging:

* a **connection cap** (``--max-connections``): excess connections get
  an immediate ``503`` and are closed;
* a **bounded pending-job queue** (``--max-pending-jobs``): submissions
  beyond it get ``503`` + ``Retry-After``;
* **per-tenant token buckets and in-flight quotas** keyed on the
  ``X-Repro-Tenant`` header (configured via ``--tenant-quotas``, a
  small TOML or JSON file; see :func:`load_tenant_quotas`): a tenant
  over its rate or in-flight budget gets ``429`` + ``Retry-After``
  while other tenants are untouched;
* **request coalescing**: concurrent identical submissions (same
  analyzer set, same canonicalized options/priority, same source
  content — hashed with :func:`coalesce_key`) attach to one underlying
  job, each caller receiving the byte-identical envelope stream of that
  single execution, with hit counts surfaced in ``/v1/stats``.

All admission bookkeeping lives on the event loop (single-threaded, no
locks); the blocking service operations — SQLite reads, job submission,
corpus ingest — run in the loop's default thread-pool executor, so a
thousand idle streaming connections cost coroutines, not threads.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qs, urlsplit

from repro.api.envelope import canonical_json
from repro.service.client import ServiceError
from repro.service.jobstore import DEFAULT_PRIORITY, TERMINAL_STATES
from repro.service.server import ROUTES as SERVER_ROUTES
from repro.service.server import (
    ServiceValidationError,
    job_status_payload,
    jobs_listing_payload,
)
from repro.service.workloads import (
    WorkloadError,
    workload_payload,
    workloads_listing_payload,
)

#: every HTTP route the gateway serves in front of a single-node daemon —
#: the exact surface of ``server.ROUTES``, kept in lockstep with
#: ``docs/service.md`` by ``tools/check_api.py``; fronting a coordinator
#: it serves ``coordinator.ROUTES`` instead
ROUTES = SERVER_ROUTES

#: tenant label applied when a request carries no ``X-Repro-Tenant``
DEFAULT_TENANT = "default"

#: reason phrases of every status the gateway emits
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    413: "Content Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits of one tenant; ``None`` fields are unlimited."""

    #: sustained job submissions per second (token-bucket refill rate)
    rate: Optional[float] = None
    #: burst capacity of the token bucket (defaults to ``rate``)
    burst: Optional[float] = None
    #: maximum queued+running jobs this tenant may have at once
    max_inflight: Optional[int] = None


#: the quota applied when neither the tenant nor ``default`` is configured
UNLIMITED_QUOTA = TenantQuota()

_QUOTA_KEYS = ("rate", "burst", "max_inflight")


def load_tenant_quotas(source: Union[str, Path, dict]) -> dict:
    """Parse a ``--tenant-quotas`` file into ``{tenant: TenantQuota}``.

    ``source`` is the path of a small TOML (``.toml``, Python 3.11+) or
    JSON file — or an already-parsed mapping — shaped like::

        {"default":  {"rate": 50, "burst": 100, "max_inflight": 32},
         "tenant-a": {"rate": 5,  "max_inflight": 2}}

    The ``default`` entry applies to every tenant without its own entry
    (including requests that send no ``X-Repro-Tenant`` header at all).
    Raises :class:`ValueError` on malformed files.
    """
    if isinstance(source, dict):
        raw = source
    else:
        path = Path(source)
        text = path.read_text(encoding="utf-8")
        if path.suffix == ".toml":
            try:
                import tomllib
            except ImportError:
                raise ValueError(
                    f"{path}: TOML tenant-quota files need Python 3.11+ "
                    f"(tomllib); use the JSON form instead") from None
            raw = tomllib.loads(text)
        else:
            try:
                raw = json.loads(text)
            except ValueError as error:
                raise ValueError(f"{path}: not valid JSON: {error}") from None
    if not isinstance(raw, dict):
        raise ValueError(
            "tenant quotas must be a mapping of tenant name to quota table")
    quotas = {}
    for tenant, entry in raw.items():
        if not isinstance(entry, dict):
            raise ValueError(
                f"quota of tenant {tenant!r} must be a table, "
                f"not {type(entry).__name__}")
        unknown = sorted(set(entry) - set(_QUOTA_KEYS))
        if unknown:
            raise ValueError(
                f"unknown quota keys for tenant {tenant!r}: "
                f"{', '.join(unknown)} (known: {', '.join(_QUOTA_KEYS)})")
        for key in _QUOTA_KEYS:
            value = entry.get(key)
            if value is not None and (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool) or value <= 0):
                raise ValueError(
                    f"quota {key!r} of tenant {tenant!r} must be a "
                    f"positive number")
        quotas[tenant] = TenantQuota(
            rate=entry.get("rate"),
            burst=entry.get("burst"),
            max_inflight=None if entry.get("max_inflight") is None
            else int(entry["max_inflight"]))
    return quotas


def coalesce_key(payload: dict) -> str:
    """The content hash under which identical submissions coalesce.

    Two ``POST /v1/jobs`` bodies coalesce exactly when their canonical
    JSON — analyzer set, options, priority lane, and the submitted
    source content itself — is identical.  Tenants deliberately do not
    participate: the underlying analysis is tenant-independent, so
    cross-tenant duplicates share one execution too (each tenant's
    *quota* is still charged at its own admission step).
    """
    material = canonical_json({
        "sources": payload.get("sources"),
        "analyses": payload.get("analyses"),
        "options": payload.get("options") or {},
        "priority": payload.get("priority") or DEFAULT_PRIORITY,
    })
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class _TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = time.monotonic()

    def acquire(self) -> float:
        """Take one token; returns 0.0, or seconds until one is available."""
        now = time.monotonic()
        self.tokens = min(self.burst,
                          self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass(frozen=True)
class GatewayConfig:
    """Typed configuration of an :class:`AsyncGateway` front end."""

    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral free port
    port: int = 0
    #: queued+running jobs beyond this are shed with 503 + Retry-After
    max_pending_jobs: int = 256
    #: open connections beyond this are shed with an immediate 503
    max_connections: int = 1024
    #: per-tenant admission limits (see :func:`load_tenant_quotas`)
    tenant_quotas: dict = field(default_factory=dict)
    #: coalesce concurrent identical job submissions
    coalesce: bool = True
    #: idle keep-alive connections are closed after this many seconds
    keepalive_timeout: float = 30.0
    #: request bodies beyond this are refused with 413
    max_body_bytes: int = 256 * 1024 * 1024
    #: request heads beyond this are refused with 431
    max_header_bytes: int = 65536
    #: stream-endpoint poll interval (matches the threaded front end)
    poll_interval: float = 0.05
    #: ``Retry-After`` seconds suggested on a full pending-job queue
    retry_after: float = 1.0

    @classmethod
    def from_service_config(cls, config) -> "GatewayConfig":
        """Build from a ``ServiceConfig`` or ``CoordinatorConfig``.

        Reads the shared daemon knobs (bind address, gateway bounds,
        quota-file path) off whichever config class carries them.
        """
        quotas = config.tenant_quotas
        if quotas and not (isinstance(quotas, dict) and all(
                isinstance(quota, TenantQuota) for quota in quotas.values())):
            # a file path, or a raw {"tenant": {"rate": ...}} mapping
            quotas = load_tenant_quotas(quotas)
        return cls(
            host=config.host,
            port=config.port,
            max_pending_jobs=config.max_pending_jobs,
            max_connections=config.max_connections,
            tenant_quotas=quotas or {},
            coalesce=config.coalesce,
            poll_interval=config.poll_interval,
        )


class AsyncGateway:
    """The asyncio HTTP front end of one daemon (see the module docstring).

    Parameters
    ----------
    service:
        The daemon to front: an ``AnalysisService`` or a
        ``ClusterCoordinator`` (anything exposing the shared operations
        surface — ``jobstore``, ``submit``, ``ingest``, ``corpus``,
        ``health``, ``stats``).
    config:
        The gateway's own knobs; bind address and port included.

    The event loop runs in one dedicated daemon thread;
    :meth:`start` blocks until the socket is bound (so :attr:`port` is
    immediately authoritative) and :meth:`stop` joins the thread.
    """

    def __init__(self, service, config: Optional[GatewayConfig] = None):
        self.service = service
        self.config = config if config is not None else GatewayConfig()
        #: coordinator daemons expose cluster routes instead of streams
        self._is_coordinator = hasattr(service, "cluster_status")
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._admission_lock: Optional[asyncio.Lock] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._bound_port: Optional[int] = None
        self._tasks: set = set()
        self._open_connections = 0
        #: tenant -> token bucket (created on first submission)
        self._buckets: dict = {}
        #: tenant -> set of queued/running job ids (pruned via states())
        self._inflight: dict = {}
        #: coalesce_key -> job id of the live underlying job
        self._coalesce_index: dict = {}
        self._counters = {
            "connections_opened": 0,
            "requests": 0,
            "coalesce_hits": 0,
            "coalesce_misses": 0,
            "shed_connections": 0,
            "shed_queue_full": 0,
            "shed_rate_limited": 0,
            "shed_inflight": 0,
        }

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Bind the socket and start serving; blocks until bound (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-gateway", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            self._startup_error = None
            raise error

    def stop(self) -> None:
        """Stop serving, cancel open handlers, join the loop (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join()
        self._thread = None
        self._loop = None

    @property
    def port(self) -> int:
        """The actually bound TCP port (resolves ``port=0`` requests)."""
        if self._bound_port is not None:
            return self._bound_port
        return self.config.port

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _serve(self) -> None:
        self._stop_event = asyncio.Event()
        self._admission_lock = asyncio.Lock()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port,
                limit=self.config.max_header_bytes)
        except OSError as error:
            self._startup_error = error
            self._ready.set()
            return
        self._bound_port = self._server.sockets[0].getsockname()[1]
        self._ready.set()
        await self._stop_event.wait()
        self._server.close()
        await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    # -- connection handling --------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        self._counters["connections_opened"] += 1
        try:
            if self._open_connections >= self.config.max_connections:
                # shed before reading anything: an immediate, explicit 503
                # beats a connection parked in an invisible accept queue
                self._counters["shed_connections"] += 1
                await self._send_json(
                    writer, 503, {"error": "too many open connections"},
                    extra=(("Retry-After", _retry_after_value(
                        self.config.retry_after)),),
                    keep=False)
                return
            self._open_connections += 1
            try:
                await self._connection_loop(reader, writer)
            finally:
                self._open_connections -= 1
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass  # client hung up (or shutdown); nothing to answer
        except Exception:  # noqa: BLE001 — a handler crash must not kill the loop
            traceback.print_exc()
        finally:
            self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _connection_loop(self, reader, writer) -> None:
        """Serve requests on one connection until close or idle timeout."""
        while True:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"),
                    timeout=self.config.keepalive_timeout)
            except (asyncio.TimeoutError, TimeoutError,
                    asyncio.IncompleteReadError, ConnectionResetError):
                return  # idle keep-alive expired, or the client closed
            except asyncio.LimitOverrunError:
                await self._send_json(
                    writer, 431, {"error": "request head too large"},
                    keep=False)
                return
            if not await self._handle_request(head, reader, writer):
                return

    async def _handle_request(self, head: bytes, reader, writer) -> bool:
        """Parse and dispatch one request; returns keep-alive?"""
        try:
            method, target, version, headers = _parse_request_head(head)
        except ValueError as error:
            await self._send_json(writer, 400, {"error": str(error)},
                                  keep=False)
            return False
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            await self._send_json(
                writer, 400, {"error": "malformed Content-Length"}, keep=False)
            return False
        if length > self.config.max_body_bytes:
            await self._send_json(
                writer, 413, {"error": "request body too large"}, keep=False)
            return False
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return False
        keep = (version == "HTTP/1.1"
                and headers.get("connection", "").lower() != "close")
        self._counters["requests"] += 1
        try:
            return await self._dispatch(method, target, headers, body,
                                        writer, keep)
        except (ConnectionResetError, BrokenPipeError):
            raise
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 — fail the request, not the loop
            traceback.print_exc()
            try:
                await self._send_json(
                    writer, 500,
                    {"error": f"internal error: "
                              f"{type(error).__name__}: {error}"},
                    keep=False)
            except (ConnectionResetError, BrokenPipeError):
                pass
            return False

    # -- routing --------------------------------------------------------------
    async def _call(self, func, *args):
        """Run one blocking service operation in the executor pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, lambda: func(*args))

    async def _dispatch(self, method, target, headers, body, writer,
                        keep: bool) -> bool:
        url = urlsplit(target)
        parts = [part for part in url.path.split("/") if part]
        query = parse_qs(url.query, keep_blank_values=True)
        service = self.service
        if method == "GET":
            if parts == ["v1", "healthz"]:
                await self._send_json(writer, 200,
                                      await self._call(service.health),
                                      keep=keep)
            elif parts == ["v1", "stats"]:
                payload = await self._call(service.stats)
                payload["gateway"] = self.gateway_stats()
                await self._send_json(writer, 200, payload, keep=keep)
            elif parts == ["v1", "cluster"] and self._is_coordinator:
                await self._send_json(writer, 200,
                                      await self._call(service.cluster_status),
                                      keep=keep)
            elif parts == ["v1", "corpus"]:
                await self._send_json(writer, 200,
                                      await self._call(service.corpus),
                                      keep=keep)
            elif parts == ["v1", "jobs"]:
                try:
                    payload = await self._call(
                        jobs_listing_payload, service.jobstore, query)
                except ServiceValidationError as error:
                    await self._send_json(writer, 400, {"error": str(error)},
                                          keep=keep)
                    return keep
                await self._send_json(writer, 200, payload, keep=keep)
            elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                job = await self._job_or_404(parts[2], writer, keep)
                if job is not None:
                    await self._send_json(
                        writer, 200,
                        await self._call(job_status_payload,
                                         service.jobstore, job, query),
                        keep=keep)
            elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                    and parts[3] == "stream" and not self._is_coordinator):
                job = await self._job_or_404(parts[2], writer, keep)
                if job is not None:
                    return await self._stream_job(job, query, writer, keep)
            elif parts == ["v1", "queries"]:
                await self._send_json(writer, 200,
                                      await self._call(service.queries_payload),
                                      keep=keep)
            elif parts == ["v1", "workloads"]:
                try:
                    payload = await self._call(
                        workloads_listing_payload, service.jobstore, query)
                except (ServiceValidationError, WorkloadError) as error:
                    await self._send_json(writer, 400, {"error": str(error)},
                                          keep=keep)
                    return keep
                await self._send_json(writer, 200, payload, keep=keep)
            elif len(parts) == 3 and parts[:2] == ["v1", "workloads"]:
                job = await self._workload_or_404(parts[2], writer, keep)
                if job is not None:
                    await self._send_json(
                        writer, 200,
                        await self._call(workload_payload, service.jobstore,
                                         job, "chunks" in query),
                        keep=keep)
            else:
                await self._send_json(
                    writer, 404,
                    {"error": f"no such endpoint: GET {url.path}"}, keep=keep)
        elif method == "POST":
            try:
                payload = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                await self._send_json(
                    writer, 400, {"error": "request body is not valid JSON"},
                    keep=keep)
                return keep
            if not isinstance(payload, dict):
                await self._send_json(
                    writer, 400, {"error": "request body must be a JSON object"},
                    keep=keep)
                return keep
            if parts == ["v1", "jobs"]:
                return await self._submit_job(payload, headers, writer, keep)
            try:
                if parts == ["v1", "corpus"]:
                    await self._send_json(
                        writer, 200,
                        await self._call(service.ingest,
                                         payload.get("documents"),
                                         payload.get("remove", ())),
                        keep=keep)
                elif (parts == ["v1", "cluster", "rebalance"]
                        and self._is_coordinator):
                    await self._send_json(writer, 200,
                                          await self._call(service.rebalance),
                                          keep=keep)
                elif parts == ["v1", "workloads"]:
                    tenant = headers.get("x-repro-tenant")
                    job = await self._call(
                        lambda: service.submit_workload(payload, tenant=tenant))
                    await self._send_json(
                        writer, 202,
                        await self._call(workload_payload,
                                         service.jobstore, job),
                        keep=keep)
                elif (len(parts) == 4 and parts[:2] == ["v1", "workloads"]
                        and parts[3] == "resume"):
                    job = await self._workload_or_404(parts[2], writer, keep)
                    if job is not None:
                        job = await self._call(
                            service.resume_workload, job.job_id)
                        await self._send_json(
                            writer, 202,
                            await self._call(workload_payload,
                                             service.jobstore, job),
                            keep=keep)
                elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                        and parts[3] == "cancel"):
                    job = await self._job_or_404(parts[2], writer, keep)
                    if job is not None:
                        state = await self._call(
                            service.cancel_job, job.job_id)
                        await self._send_json(
                            writer, 200, {"id": job.job_id, "state": state},
                            keep=keep)
                elif parts == ["v1", "queries"]:
                    await self._send_json(
                        writer, 201,
                        await self._call(service.register_query_spec, payload),
                        keep=keep)
                else:
                    await self._send_json(
                        writer, 404,
                        {"error": f"no such endpoint: POST {url.path}"},
                        keep=keep)
            except ServiceValidationError as error:
                await self._send_json(writer, 400, {"error": str(error)},
                                      keep=keep)
            except (ServiceError, OSError) as error:
                # coordinator parity: a worker refused or died mid-routing
                # is the broken dependency, so answer as a bad gateway
                await self._send_json(
                    writer, 502, {"error": f"shard unreachable: {error}"},
                    keep=keep)
        else:
            await self._send_json(
                writer, 501, {"error": f"unsupported method {method}"},
                keep=False)
            return False
        return keep

    async def _job_or_404(self, raw_id: str, writer, keep: bool):
        """Resolve a path job id (404 messages identical to the threaded)."""
        try:
            job_id = int(raw_id)
        except ValueError:
            await self._send_json(
                writer, 404, {"error": f"malformed job id {raw_id!r}"},
                keep=keep)
            return None
        job = await self._call(self.service.jobstore.get, job_id)
        if job is None:
            await self._send_json(writer, 404, {"error": f"no job {job_id}"},
                                  keep=keep)
        return job

    async def _workload_or_404(self, raw_id: str, writer, keep: bool):
        """Resolve a path workload id (messages match the threaded server)."""
        job = await self._job_or_404(raw_id, writer, keep)
        if job is not None and job.workload is None:
            await self._send_json(
                writer, 404,
                {"error": f"job {job.job_id} is not a workload"}, keep=keep)
            return None
        return job

    # -- admission-controlled submission --------------------------------------
    def _quota(self, tenant: str) -> TenantQuota:
        quotas = self.config.tenant_quotas
        quota = quotas.get(tenant)
        if quota is None:
            quota = quotas.get(DEFAULT_TENANT, UNLIMITED_QUOTA)
        return quota

    async def _prune_inflight(self, tenant: str) -> set:
        """Drop finished jobs from one tenant's in-flight set."""
        inflight = self._inflight.setdefault(tenant, set())
        if inflight:
            states = await self._call(self.service.jobstore.states,
                                      tuple(inflight))
            inflight.intersection_update(
                job_id for job_id, state in states.items()
                if state not in TERMINAL_STATES)
        return inflight

    async def _submit_job(self, payload, headers, writer, keep: bool) -> bool:
        """``POST /v1/jobs`` behind the full admission-control stack.

        Order of the checks: token bucket (cheapest, charges every
        attempt), then coalescing (a hit consumes no queue slot and no
        in-flight budget), then the global pending bound, then the
        tenant's in-flight quota, then the actual submission.
        """
        tenant = headers.get("x-repro-tenant") or DEFAULT_TENANT
        quota = self._quota(tenant)
        if quota.rate is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                burst = quota.burst if quota.burst is not None else quota.rate
                bucket = self._buckets[tenant] = _TokenBucket(
                    quota.rate, burst)
            wait = bucket.acquire()
            if wait > 0.0:
                self._counters["shed_rate_limited"] += 1
                await self._send_json(
                    writer, 429,
                    {"error": f"tenant {tenant!r} exceeded its submission "
                              f"rate ({quota.rate:g}/s)"},
                    extra=(("Retry-After", _retry_after_value(wait)),),
                    keep=keep)
                return keep
        # the remaining checks and the submission run under one lock, so
        # N concurrent identical submissions resolve to exactly one job:
        # the first creates it, the rest observe it in the coalesce index
        async with self._admission_lock:
            key = None
            if self.config.coalesce:
                key = coalesce_key(payload)
                attached = await self._attached_job(key)
                if attached is not None:
                    self._counters["coalesce_hits"] += 1
                    response = {"job": attached.as_dict(), "coalesced": True}
                    await self._send_json(writer, 202, response, keep=keep)
                    return keep
            depth = await self._call(self.service.jobstore.queue_depth)
            if depth >= self.config.max_pending_jobs:
                self._counters["shed_queue_full"] += 1
                await self._send_json(
                    writer, 503,
                    {"error": f"job queue full ({depth} jobs pending)"},
                    extra=(("Retry-After", _retry_after_value(
                        self.config.retry_after)),),
                    keep=keep)
                return keep
            if quota.max_inflight is not None:
                inflight = await self._prune_inflight(tenant)
                if len(inflight) >= quota.max_inflight:
                    self._counters["shed_inflight"] += 1
                    await self._send_json(
                        writer, 429,
                        {"error": f"tenant {tenant!r} has {len(inflight)} "
                                  f"jobs in flight "
                                  f"(limit {quota.max_inflight})"},
                        extra=(("Retry-After", _retry_after_value(
                            self.config.retry_after)),),
                        keep=keep)
                    return keep
            try:
                job = await self._call(
                    lambda: self.service.submit(
                        payload.get("sources"), payload.get("analyses"),
                        payload.get("options"),
                        priority=payload.get("priority"),
                        tenant=headers.get("x-repro-tenant")))
            except ServiceValidationError as error:
                await self._send_json(writer, 400, {"error": str(error)},
                                      keep=keep)
                return keep
            if key is not None:
                self._counters["coalesce_misses"] += 1
                self._coalesce_index[key] = job.job_id
                if len(self._coalesce_index) > 4 * self.config.max_pending_jobs:
                    await self._sweep_coalesce_index()
            if quota.max_inflight is not None:
                self._inflight.setdefault(tenant, set()).add(job.job_id)
        await self._send_json(writer, 202, {"job": job.as_dict()}, keep=keep)
        return keep

    async def _attached_job(self, key: str):
        """The live job an identical submission attaches to, if any.

        Entries whose job finished (or vanished) are evicted lazily: a
        completed job's results are that execution's — a *new* identical
        submission after completion runs again, by design.
        """
        job_id = self._coalesce_index.get(key)
        if job_id is None:
            return None
        job = await self._call(self.service.jobstore.get, job_id)
        if job is None or job.state in TERMINAL_STATES:
            self._coalesce_index.pop(key, None)
            return None
        return job

    async def _sweep_coalesce_index(self) -> None:
        """Evict every finished job from the coalesce index in one query."""
        states = await self._call(self.service.jobstore.states,
                                  tuple(self._coalesce_index.values()))
        self._coalesce_index = {
            key: job_id for key, job_id in self._coalesce_index.items()
            if states.get(job_id) not in (*TERMINAL_STATES, None)}

    # -- streaming ------------------------------------------------------------
    async def _stream_job(self, job, query, writer, keep: bool) -> bool:
        """Chunked NDJSON, byte-identical framing to the threaded server.

        Each envelope line is one chunk (``%X\\r\\n<line>\\r\\n``) of the
        stored canonical JSON plus the newline, closed by ``0\\r\\n\\r\\n``
        — the exact bytes ``_ServiceRequestHandler._stream_job`` writes.
        """
        try:
            timeout = float(query["timeout"][0]) if "timeout" in query else None
        except ValueError:
            await self._send_json(
                writer, 400, {"error": "'timeout' must be a number"}, keep=keep)
            return keep
        head = [b"HTTP/1.1 200 OK",
                b"Content-Type: application/x-ndjson",
                b"Transfer-Encoding: chunked"]
        if not keep:
            head.append(b"Connection: close")
        writer.write(b"\r\n".join(head) + b"\r\n\r\n")
        jobstore = self.service.jobstore
        deadline = time.monotonic() + timeout if timeout is not None else None
        last_seq = -1
        while True:
            # state before results: a terminal state observed here
            # guarantees the fetch below has the complete tail
            current = await self._call(jobstore.get, job.job_id)
            for seq, envelope in await self._call(
                    jobstore.results, job.job_id, last_seq):
                data = envelope.encode("utf-8") + b"\n"
                writer.write(b"%X\r\n" % len(data) + data + b"\r\n")
                last_seq = seq
            await writer.drain()
            if current is None or current.state in TERMINAL_STATES:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            await asyncio.sleep(self.config.poll_interval)
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return keep

    # -- responses ------------------------------------------------------------
    async def _send_json(self, writer, status: int, payload: dict,
                         extra=(), keep: bool = True) -> None:
        """Write one JSON response (body bytes match the threaded server)."""
        body = json.dumps(payload).encode("utf-8")
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}"]
        for name, value in extra:
            lines.append(f"{name}: {value}")
        if not keep:
            lines.append("Connection: close")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # -- introspection --------------------------------------------------------
    def gateway_stats(self) -> dict:
        """The ``gateway`` block the asyncio front end adds to ``/v1/stats``."""
        counters = self._counters
        return {
            "frontend": "asyncio",
            "open_connections": self._open_connections,
            "connections_opened": counters["connections_opened"],
            "requests": counters["requests"],
            "coalesce": {
                "enabled": self.config.coalesce,
                "hits": counters["coalesce_hits"],
                "misses": counters["coalesce_misses"],
                "tracked": len(self._coalesce_index),
            },
            "shed": {
                "connections": counters["shed_connections"],
                "queue_full": counters["shed_queue_full"],
                "rate_limited": counters["shed_rate_limited"],
                "inflight": counters["shed_inflight"],
            },
            "limits": {
                "max_pending_jobs": self.config.max_pending_jobs,
                "max_connections": self.config.max_connections,
                "tenants_configured": sorted(self.config.tenant_quotas),
            },
            "tenants": {
                tenant: {"inflight": len(ids)}
                for tenant, ids in sorted(self._inflight.items()) if ids
            },
        }


def _retry_after_value(seconds: float) -> str:
    """``Retry-After`` header value: whole seconds, at least 1."""
    if not math.isfinite(seconds):
        return "60"
    return str(max(1, math.ceil(seconds)))


def _parse_request_head(head: bytes) -> tuple:
    """Parse a raw HTTP/1.x request head into (method, target, version, headers).

    Header names are lower-cased; values are stripped.  Raises
    :class:`ValueError` on anything malformed.
    """
    lines = head.decode("latin-1").split("\r\n")
    request_parts = lines[0].split(" ")
    if len(request_parts) != 3:
        raise ValueError(f"malformed request line {lines[0]!r}")
    method, target, version = request_parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise ValueError(f"unsupported protocol version {version!r}")
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, target, version, headers


__all__ = [
    "AsyncGateway",
    "DEFAULT_TENANT",
    "GatewayConfig",
    "ROUTES",
    "TenantQuota",
    "UNLIMITED_QUOTA",
    "coalesce_key",
    "load_tenant_quotas",
]
