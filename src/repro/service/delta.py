"""Delta ingest: unified diffs, base-version guards, source retention.

``POST /v1/corpus`` historically took full ``[id, source]`` pairs.  This
module adds the *delta* forms the incremental-analysis workload needs —
CI-style clients re-submitting one edited contract should not have to
re-upload (or even re-read) the rest of the corpus:

* ``{"id": ..., "source": ..., "base_version": <content key>}`` — a full
  replacement source, guarded by the content key of the base the client
  edited.  A mismatch (someone else replaced the document in between)
  rejects the request instead of silently clobbering.
* ``{"id": ..., "diff": <unified diff>, "base_version": <content key>}``
  — a unified diff against the *server's* retained copy of the source,
  applied here.  ``base_version`` is optional but recommended.

Both forms normalize to plain ``(id, source)`` pairs before they reach
the detector, so every downstream layer (index, shards, cluster routing)
is oblivious to how the source arrived.

:class:`SourceJournal` is the worker-side retention tier backing the
diff form (the cluster coordinator already retains sources in its
routing journal): one SQLite table of ``id -> (source, content key)``
in the daemon's data directory, recorded at ingest time.

Everything here is stdlib-only, like the rest of the service.
"""

from __future__ import annotations

import difflib
import json
import re
import sqlite3
import threading
from pathlib import Path
from typing import Callable, Hashable, Iterable, List, Optional, Tuple, Union

from repro.core.artifacts import content_key
from repro.core.persistence import DEFAULT_BUSY_TIMEOUT_SECONDS, retry_on_busy

#: file name of the source-retention database inside a service data dir
SOURCES_DATABASE_NAME = "sources.sqlite"

_HUNK_HEADER = re.compile(r"^@@ -(\d+)(?:,(\d+))? \+(\d+)(?:,(\d+))? @@")

_NO_NEWLINE = "\\ No newline at end of file"


class DeltaError(ValueError):
    """A delta request cannot be applied (bad diff, stale base, no base)."""


def make_unified_diff(base: str, new: str) -> str:
    """A unified diff of ``new`` against ``base`` that round-trips exactly.

    Unlike raw :func:`difflib.unified_diff` output, missing final
    newlines are encoded with the standard ``\\ No newline at end of
    file`` marker, so :func:`apply_unified_diff` reconstructs ``new``
    byte-for-byte (the ingest content-key guard depends on that).
    """
    out: List[str] = []
    for line in difflib.unified_diff(
            base.splitlines(keepends=True), new.splitlines(keepends=True),
            fromfile="a", tofile="b"):
        if line.endswith("\n"):
            out.append(line)
        else:
            out.append(line + "\n")
            out.append(_NO_NEWLINE + "\n")
    return "".join(out)


def apply_unified_diff(base: str, diff: str) -> str:
    """Apply a unified ``diff`` to ``base``; byte-exact, strict.

    Context and removed lines are verified against ``base`` — any
    mismatch (a stale diff) raises :class:`DeltaError` rather than
    producing a silently wrong source.  ``--- / +++`` headers are
    optional; ``\\ No newline at end of file`` markers are honored.
    """
    base_lines = base.splitlines(keepends=True)
    lines = diff.splitlines()
    result: List[str] = []
    cursor = 0  # next unconsumed index into base_lines
    saw_hunk = False
    index = 0

    def base_line_at(position: int, expected: str) -> str:
        if position >= len(base_lines):
            raise DeltaError(
                f"diff refers past the end of the base source "
                f"(line {position + 1})")
        actual = base_lines[position]
        if actual.rstrip("\r\n") != expected:
            raise DeltaError(
                f"diff does not match the base source at line "
                f"{position + 1}: expected {expected!r}, base has "
                f"{actual.rstrip(chr(10))!r}")
        return actual

    while index < len(lines):
        line = lines[index]
        if line.startswith(("--- ", "+++ ", "diff ", "index ")) or not line.strip():
            index += 1
            continue
        header = _HUNK_HEADER.match(line)
        if header is None:
            raise DeltaError(f"malformed diff line: {line!r}")
        saw_hunk = True
        old_start = int(header.group(1))
        old_count = int(header.group(2) or "1")
        # a zero-length old range addresses the gap *after* old_start
        target = old_start - 1 if old_count > 0 else old_start
        if target < cursor or target > len(base_lines):
            raise DeltaError(f"hunk out of order or out of range: {line!r}")
        result.extend(base_lines[cursor:target])
        cursor = target
        index += 1
        while index < len(lines):
            body = lines[index]
            if body.startswith("@@"):
                break
            if body.startswith(_NO_NEWLINE[0]):  # the backslash marker
                # refers to the previous emitted line; additions had a
                # newline tentatively appended — strip it back off
                if result and result[-1].endswith("\n") \
                        and index > 0 and lines[index - 1].startswith("+"):
                    result[-1] = result[-1][:-1]
                index += 1
                continue
            if body.startswith("+"):
                result.append(body[1:] + "\n")
            elif body.startswith("-"):
                base_line_at(cursor, body[1:])
                cursor += 1
            elif body.startswith(" ") or body == "":
                result.append(base_line_at(cursor, body[1:]))
                cursor += 1
            elif body.startswith(("--- ", "+++ ")):
                break
            else:
                raise DeltaError(f"malformed hunk line: {body!r}")
            index += 1
    if not saw_hunk:
        raise DeltaError("diff contains no hunks")
    result.extend(base_lines[cursor:])
    return "".join(result)


def resolve_ingest_documents(
    documents,
    resolve_base: Callable[[Hashable], Optional[str]],
) -> List[Tuple[Hashable, str]]:
    """Normalize wire ``documents`` items into full ``(id, source)`` pairs.

    Accepts the classic ``[id, source]`` pair, the guarded full-source
    object, and the diff object (see module docstring).  ``resolve_base``
    returns the server's retained source for an id (or ``None``).
    Raises :class:`DeltaError` on a stale ``base_version``, a diff with
    no retained base, or any malformed item — the caller maps that to
    HTTP 400.
    """
    if not isinstance(documents, (list, tuple)) or not documents:
        raise DeltaError(
            "'documents' must be a non-empty list of [id, source] pairs "
            "or delta objects")
    resolved: List[Tuple[Hashable, str]] = []
    for item in documents:
        if isinstance(item, (list, tuple)):
            if (len(item) != 2 or not isinstance(item[0], (str, int))
                    or not isinstance(item[1], str)):
                raise DeltaError(
                    "every 'documents' pair must be [id, source] "
                    "(id: string or integer, source: string)")
            resolved.append((item[0], item[1]))
            continue
        if not isinstance(item, dict):
            raise DeltaError(
                "every 'documents' item must be an [id, source] pair or a "
                "delta object")
        document_id = item.get("id")
        if not isinstance(document_id, (str, int)):
            raise DeltaError(
                "a delta object needs an 'id' (string or integer)")
        source = item.get("source")
        diff = item.get("diff")
        base_version = item.get("base_version")
        if base_version is not None and not isinstance(base_version, str):
            raise DeltaError("'base_version' must be a content-key string")
        if (source is None) == (diff is None):
            raise DeltaError(
                f"delta object for {document_id!r} needs exactly one of "
                f"'source' or 'diff'")
        if source is not None:
            if not isinstance(source, str):
                raise DeltaError("'source' must be a string")
            if base_version is not None:
                base = resolve_base(document_id)
                if base is None or content_key(base) != base_version:
                    raise DeltaError(
                        f"base_version mismatch for {document_id!r}: the "
                        f"retained source is not {base_version!r} (stale "
                        f"client, or the document was never ingested here)")
            resolved.append((document_id, source))
            continue
        if not isinstance(diff, str):
            raise DeltaError("'diff' must be a unified-diff string")
        base = resolve_base(document_id)
        if base is None:
            raise DeltaError(
                f"no retained source for {document_id!r}; a 'diff' delta "
                f"needs the document to have been ingested before")
        if base_version is not None and content_key(base) != base_version:
            raise DeltaError(
                f"base_version mismatch for {document_id!r}: the retained "
                f"source is not {base_version!r}")
        resolved.append((document_id, apply_unified_diff(base, diff)))
    return resolved


class SourceJournal:
    """Worker-side ``id -> (source, content key)`` retention journal.

    Backs the diff ingest form and the ``changed_only`` watch workload
    on a single-node daemon.  Ids are stored as their JSON encoding so
    string and integer ids can never collide (the cluster coordinator's
    routing journal uses the same convention).
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS sources (
        id     TEXT PRIMARY KEY,
        source TEXT NOT NULL,
        key    TEXT NOT NULL
    );
    """

    def __init__(self, path: Union[str, Path],
                 busy_timeout_seconds: float = DEFAULT_BUSY_TIMEOUT_SECONDS):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None)
        self._connection.executescript(self._SCHEMA)
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute(
            f"PRAGMA busy_timeout={int(busy_timeout_seconds * 1000)}")

    def close(self) -> None:
        """Close the database connection (idempotent)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "SourceJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _execute(self, sql: str, parameters: tuple = ()):
        if self._connection is None:
            raise RuntimeError("SourceJournal is closed")
        return retry_on_busy(lambda: self._connection.execute(sql, parameters))

    def record(self, document_id: Hashable, source: str,
               key: Optional[str] = None) -> None:
        """Remember (or update) one ingested document's source."""
        with self._lock:
            self._execute(
                "REPLACE INTO sources (id, source, key) VALUES (?, ?, ?)",
                (json.dumps(document_id), source,
                 key if key is not None else content_key(source)))

    def forget(self, document_id: Hashable) -> None:
        """Drop one document from the journal (idempotent)."""
        with self._lock:
            self._execute("DELETE FROM sources WHERE id = ?",
                          (json.dumps(document_id),))

    def get(self, document_id: Hashable) -> Optional[str]:
        """The retained source of one document, or ``None``."""
        with self._lock:
            row = self._execute(
                "SELECT source FROM sources WHERE id = ?",
                (json.dumps(document_id),)).fetchone()
        return row[0] if row is not None else None

    def sources(self, document_ids: Iterable[Hashable]) -> List[Tuple[Hashable, str]]:
        """``(id, source)`` pairs of the given journaled ids, in id order."""
        wanted = {json.dumps(document_id) for document_id in document_ids}
        with self._lock:
            rows = self._execute("SELECT id, source FROM sources").fetchall()
        pairs = [(json.loads(raw_id), source)
                 for raw_id, source in rows if raw_id in wanted]
        pairs.sort(key=lambda pair: str(pair[0]))
        return pairs

    def count(self) -> int:
        """How many documents the journal holds."""
        with self._lock:
            return self._execute("SELECT COUNT(*) FROM sources").fetchone()[0]


__all__ = [
    "DeltaError",
    "SOURCES_DATABASE_NAME",
    "SourceJournal",
    "apply_unified_diff",
    "make_unified_diff",
    "resolve_ingest_documents",
]
