"""A small stdlib HTTP client for the analysis service daemon.

:class:`ServiceClient` speaks the daemon's JSON API over a pooled
keep-alive :class:`http.client.HTTPConnection` — submit jobs, poll or
stream results, ingest corpus documents, read health and stats.  It is
what ``repro submit`` / ``repro jobs`` use, what the tests drive the
daemon with, and a reference for talking to the service from any other
HTTP client::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8741")
    client.ingest([["0xabc...", contract_source]])
    job = client.submit([["q1", snippet]], analyses=["ccd", "ccc"])
    finished = client.wait(job["id"])
    for envelope in finished["results"]:
        print(envelope["analyzer"], envelope["contract_id"])

Connections are pooled **per thread** (the cluster coordinator shares
one client across its fan-out workers), reused across requests, and
quietly replaced when the daemon closes its side between requests: an
idempotent request that hits a stale pooled socket is retried exactly
once on a fresh connection; a non-idempotent ``POST`` is never retried.

Failures surface as :class:`ServiceError` carrying the HTTP status and
the daemon's ``error`` message; transport failures are raised in the
:class:`OSError` family (refused connections as
:class:`urllib.error.URLError`, matching the historical
``urllib.request`` behavior callers already handle).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.error
from typing import Iterator, Optional
from urllib.parse import quote, urlsplit


class ServiceError(RuntimeError):
    """An HTTP error from the daemon (status code + server message)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class JobFailedError(ServiceError):
    """A waited-on job finished in the ``failed`` state."""

    def __init__(self, job: dict):
        super().__init__(200, f"job {job.get('id')} failed: {job.get('error')}")
        self.job = job


class ServiceClient:
    """Talk to a running :class:`~repro.service.server.AnalysisService`.

    Parameters
    ----------
    base_url:
        E.g. ``http://127.0.0.1:8741`` (trailing slash tolerated).
    timeout:
        Per-request socket timeout in seconds.
    connect_timeout:
        For how many seconds a *connection-refused* failure is retried
        with bounded exponential backoff before being raised.  The
        default ``0.0`` fails immediately (a dead daemon stays a fast,
        loud error); the cluster coordinator and the test harness set a
        budget so requests racing a daemon's startup (or a worker's
        restart) wait instead of flaking.
    """

    #: first backoff sleep after a refused connection, in seconds
    RETRY_INITIAL_DELAY = 0.05
    #: backoff sleeps never exceed this, keeping retries responsive
    RETRY_MAX_DELAY = 1.0

    def __init__(self, base_url: str, timeout: float = 60.0,
                 connect_timeout: float = 0.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        split = urlsplit(self.base_url)
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port if split.port is not None else 80
        # one pooled keep-alive connection per thread: HTTPConnection is
        # not thread-safe, and the coordinator shares clients across its
        # fan-out workers
        self._local = threading.local()

    # -- connection pool ------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        """This thread's pooled connection, created on first use."""
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout)
            self._local.connection = connection
        return connection

    def _drop_connection(self) -> None:
        """Close and forget this thread's pooled connection."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def close(self) -> None:
        """Close the calling thread's pooled connection (idempotent)."""
        self._drop_connection()

    # -- plumbing -------------------------------------------------------------
    def _open(self, method: str, path: str, body: Optional[bytes] = None,
              headers: Optional[dict] = None) -> http.client.HTTPResponse:
        """Issue one request on the pooled connection; returns the response.

        Two failure modes are retried, separately:

        * a **refused** TCP connection (the daemon is not listening
          *yet*) is retried with bounded exponential backoff for up to
          :attr:`connect_timeout` seconds, then raised as
          :class:`urllib.error.URLError` — exactly the semantics the
          ``urllib``-based client had;
        * a **stale pooled socket** (the daemon closed its keep-alive
          side between requests, surfacing as ``RemoteDisconnected`` or
          a reset) is retried exactly once on a fresh connection — and
          only for idempotent ``GET`` requests; a ``POST`` may already
          have executed, so it propagates instead.

        Every other failure — HTTP errors, timeouts, resets mid-request
        on a fresh connection — propagates immediately.
        """
        deadline = time.monotonic() + self.connect_timeout
        delay = self.RETRY_INITIAL_DELAY
        retry_stale = method == "GET"
        while True:
            connection = self._connection()
            reused = connection.sock is not None
            try:
                connection.request(method, path, body=body,
                                   headers=dict(headers or {}))
                return connection.getresponse()
            except ConnectionRefusedError as error:
                self._drop_connection()
                if time.monotonic() >= deadline:
                    raise urllib.error.URLError(error) from error
            except (http.client.HTTPException, ConnectionError) as error:
                self._drop_connection()
                if reused and retry_stale:
                    retry_stale = False
                    continue
                if isinstance(error, http.client.HTTPException) and \
                        not isinstance(error, OSError):
                    # keep transport failures in the OSError family the
                    # callers (wait_ready, the coordinator) already catch
                    raise urllib.error.URLError(error) from error
                raise
            time.sleep(min(delay, max(deadline - time.monotonic(), 0.0)))
            delay = min(delay * 2, self.RETRY_MAX_DELAY)

    def _finish(self, response: http.client.HTTPResponse) -> bytes:
        """Drain one response so the pooled connection is reusable."""
        data = response.read()
        if response.will_close:
            # the server asked for (or forced) connection close; a next
            # request on this socket would hit RemoteDisconnected
            self._drop_connection()
        return data

    def _request(self, method: str, path: str, payload: Optional[dict] = None,
                 headers: Optional[dict] = None) -> dict:
        body = json.dumps(payload).encode("utf-8") \
            if payload is not None else None
        all_headers = {"Content-Type": "application/json"}
        all_headers.update(headers or {})
        response = self._open(method, path, body=body, headers=all_headers)
        data = self._finish(response)
        if response.status >= 400:
            # HTTP errors are never retried: the request reached the
            # daemon and was answered
            raise ServiceError(
                response.status, _error_message(data, response.reason))
        return json.loads(data.decode("utf-8"))

    def wait_ready(self, timeout: float = 30.0) -> dict:
        """Poll ``/v1/healthz`` until the daemon answers; returns its payload.

        Unlike :attr:`connect_timeout` (which only covers a refused
        connection), this also rides out reset or half-open sockets of a
        daemon that is still binding.  Raises :class:`TimeoutError` when
        the daemon never comes up.
        """
        deadline = time.monotonic() + timeout
        delay = self.RETRY_INITIAL_DELAY
        while True:
            try:
                return self.healthz()
            except (ServiceError, OSError) as error:
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"daemon at {self.base_url} not ready "
                        f"after {timeout:.1f}s: {error}") from error
            time.sleep(min(delay, max(deadline - time.monotonic(), 0.0)))
            delay = min(delay * 2, self.RETRY_MAX_DELAY)

    # -- jobs -----------------------------------------------------------------
    def submit(self, sources, analyses, options: Optional[dict] = None,
               priority: Optional[str] = None,
               tenant: Optional[str] = None) -> dict:
        """Submit a job; returns the queued job's wire form (with ``id``).

        Parameters
        ----------
        sources:
            ``[id, source]`` pairs to analyze.
        analyses:
            Analyzer ids to run, in order.
        options:
            Per-analyzer option mapping.
        priority:
            Scheduling lane (``interactive`` or ``batch``; daemon
            default is batch when omitted).
        tenant:
            Sent as the ``X-Repro-Tenant`` header — the label the
            gateway meters quotas on.
        """
        body = {"sources": [list(pair) for pair in sources],
                "analyses": list(analyses)}
        if options is not None:
            body["options"] = options
        if priority is not None:
            body["priority"] = priority
        headers = {"X-Repro-Tenant": tenant} if tenant is not None else None
        return self._request("POST", "/v1/jobs", body, headers=headers)["job"]

    def job(self, job_id: int, results: bool = True) -> dict:
        """One job's status envelope: ``{"job": {...}, "results": [...]}``.

        ``results=False`` asks the daemon to omit the result envelopes
        (``?results=0``) — the cheap form :meth:`wait` polls with.
        """
        path = f"/v1/jobs/{job_id}"
        if not results:
            path += "?results=0"
        return self._request("GET", path)

    def jobs_page(self, state: Optional[str] = None, limit: int = 100,
                  offset: int = 0, tenant: Optional[str] = None) -> dict:
        """One page of the job listing, with its paging envelope.

        Returns the full ``GET /v1/jobs`` payload:
        ``{"jobs": [...], "total": N, "limit": L, "offset": O}``.
        """
        path = f"/v1/jobs?limit={limit}&offset={offset}"
        if state is not None:
            path += f"&state={quote(state)}"
        if tenant is not None:
            path += f"&tenant={quote(tenant)}"
        return self._request("GET", path)

    def jobs(self, state: Optional[str] = None, limit: int = 100,
             offset: int = 0, tenant: Optional[str] = None) -> list:
        """A page of jobs (newest first), filtered by state and/or tenant.

        Parameters
        ----------
        state:
            Keep only jobs in this state, when given.
        limit:
            Page size.
        offset:
            Number of matching jobs to skip before the page.
        tenant:
            Keep only jobs recorded under this tenant, when given.
        """
        return self.jobs_page(state=state, limit=limit, offset=offset,
                              tenant=tenant)["jobs"]

    def wait(self, job_id: int, timeout: float = 120.0, poll: float = 0.05) -> dict:
        """Poll until the job completes; returns its final status envelope.

        ``cancelled`` is terminal like ``done`` — the returned envelope
        carries whatever partial results the job produced before the
        cancel landed.  Raises :class:`JobFailedError` when the job
        fails and :class:`TimeoutError` when it does not finish in time.
        """
        deadline = time.monotonic() + timeout
        while True:
            # poll without results; download the envelopes exactly once
            status = self.job(job_id, results=False)
            if status["job"]["state"] in ("done", "cancelled"):
                return self.job(job_id)
            if status["job"]["state"] == "failed":
                raise JobFailedError(status["job"])
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['job']['state']} "
                    f"after {timeout:.1f}s")
            time.sleep(poll)

    def cancel(self, job_id: int) -> dict:
        """Cancel one job (``POST /v1/jobs/{id}/cancel``).

        Returns ``{"id": ..., "state": ...}`` — ``cancelled`` for a
        dropped queued job, ``cancelling`` for a running workload that
        will stop at its next chunk boundary, or the unchanged terminal
        state of an already-finished job.
        """
        return self._request("POST", f"/v1/jobs/{job_id}/cancel", {})

    def stream(self, job_id: int, timeout: Optional[float] = None,
               raw: bool = False) -> Iterator:
        """Yield result envelopes as the daemon streams them (NDJSON lines).

        With ``raw=True`` the undecoded line bytes are yielded instead —
        these are exactly the canonical-JSON bytes of each envelope,
        which is what the byte-parity tests compare.
        """
        path = f"/v1/jobs/{job_id}/stream"
        if timeout is not None:
            path += f"?timeout={timeout}"
        response = self._open("GET", path)
        if response.status >= 400:
            data = self._finish(response)
            raise ServiceError(
                response.status, _error_message(data, response.reason))
        try:
            for line in response:
                line = line.rstrip(b"\n")
                if not line:
                    continue
                yield line if raw else json.loads(line.decode("utf-8"))
        finally:
            if not response.isclosed() or response.will_close:
                # an abandoned stream leaves unread bytes on the socket;
                # it can never carry another request
                self._drop_connection()

    # -- workloads and custom queries -----------------------------------------
    def submit_workload(self, kind: str, params: Optional[dict] = None,
                        priority: Optional[str] = None,
                        tenant: Optional[str] = None,
                        chunks: Optional[list] = None) -> dict:
        """Submit a workload job (``POST /v1/workloads``).

        Returns the queued workload's wire form — the job fields plus a
        ``progress`` block.  ``chunks`` restricts execution to a subset
        of chunk indices (the coordinator's fan-out form); a restricted
        run never merges.
        """
        body: dict = {"kind": kind}
        if params is not None:
            body["params"] = params
        if priority is not None:
            body["priority"] = priority
        if chunks is not None:
            body["chunks"] = list(chunks)
        headers = {"X-Repro-Tenant": tenant} if tenant is not None else None
        return self._request("POST", "/v1/workloads", body, headers=headers)

    def workload(self, job_id: int, chunks: bool = False) -> dict:
        """One workload's status: job fields plus ``{done, total, eta}``.

        ``chunks=True`` adds the raw chunk rows (``?chunks=1``) — spec
        and result as stored canonical-JSON strings.
        """
        path = f"/v1/workloads/{job_id}"
        if chunks:
            path += "?chunks=1"
        return self._request("GET", path)

    def workloads_page(self, state: Optional[str] = None, limit: int = 100,
                       offset: int = 0) -> dict:
        """One page of the workload listing, with its paging envelope."""
        path = f"/v1/workloads?limit={limit}&offset={offset}"
        if state is not None:
            path += f"&state={quote(state)}"
        return self._request("GET", path)

    def workloads(self, state: Optional[str] = None, limit: int = 100,
                  offset: int = 0) -> list:
        """A page of workload jobs (newest first), optionally by state."""
        return self.workloads_page(state=state, limit=limit,
                                   offset=offset)["workloads"]

    def resume_workload(self, job_id: int) -> dict:
        """Requeue a failed or cancelled workload, reusing its done chunks."""
        return self._request("POST", f"/v1/workloads/{job_id}/resume", {})

    def wait_workload(self, job_id: int, timeout: float = 300.0,
                      poll: float = 0.05) -> dict:
        """Poll a workload to a terminal state; returns its status envelope.

        The returned envelope is the plain job status
        (``GET /v1/jobs/{id}``), so ``results[0]`` is the merged report
        of a completed unrestricted workload.  Raises
        :class:`JobFailedError` on failure, :class:`TimeoutError` on
        timeout; ``cancelled`` is terminal and returned like ``done``.
        """
        return self.wait(job_id, timeout=timeout, poll=poll)

    def register_query(self, spec: dict) -> dict:
        """Register a custom DSL query (``POST /v1/queries``).

        ``spec`` is the declarative query object (see
        :mod:`repro.ccc.custom`); the daemon validates it, persists it,
        and makes it immediately usable in ccc jobs and workloads.
        """
        return self._request("POST", "/v1/queries", spec)

    def queries(self) -> list:
        """Every active ccc query (built-in and custom) the daemon serves."""
        return self._request("GET", "/v1/queries")["queries"]

    # -- corpus and introspection ---------------------------------------------
    def ingest(self, documents=None, remove=None) -> dict:
        """Ingest documents into the live CCD index.

        Each item of ``documents`` is a ``(id, source)`` pair or a delta
        object — ``{"id": ..., "source": ..., "base_version": ...}`` for
        a guarded full replacement, or ``{"id": ..., "diff": ...,
        "base_version": ...}`` to send a unified diff against the
        server's retained copy (see :func:`ingest_delta` for a
        convenience wrapper).  ``remove`` lists document ids to retire
        from the index instead; a single call may carry both (removals
        are applied first).
        """
        body: dict = {}
        if documents is not None:
            body["documents"] = [
                item if isinstance(item, dict) else list(item)
                for item in documents]
        if remove is not None:
            body["remove"] = list(remove)
        return self._request("POST", "/v1/corpus", body)

    def ingest_delta(self, document_id, *, source: Optional[str] = None,
                     diff: Optional[str] = None,
                     base_version: Optional[str] = None) -> dict:
        """Ingest one document as a delta (guarded source or unified diff)."""
        item: dict = {"id": document_id}
        if source is not None:
            item["source"] = source
        if diff is not None:
            item["diff"] = diff
        if base_version is not None:
            item["base_version"] = base_version
        return self.ingest(documents=[item])

    def corpus(self) -> dict:
        """The ids currently in the daemon's index (``GET /v1/corpus``)."""
        return self._request("GET", "/v1/corpus")

    def healthz(self) -> dict:
        """The daemon's liveness payload."""
        return self._request("GET", "/v1/healthz")

    def stats(self) -> dict:
        """The daemon's counters (cache, index, match stats, queue)."""
        return self._request("GET", "/v1/stats")

    # -- cluster coordinator ---------------------------------------------------
    def cluster(self) -> dict:
        """Cluster topology and per-shard health (coordinator only)."""
        return self._request("GET", "/v1/cluster")

    def rebalance(self) -> dict:
        """Move documents whose ring owner changed (coordinator only)."""
        return self._request("POST", "/v1/cluster/rebalance", {})


def _error_message(body: bytes, fallback: str) -> str:
    """The daemon's ``error`` field, or the raw body when not JSON."""
    try:
        text = body.decode("utf-8")
        return json.loads(text).get("error", text)
    except (ValueError, UnicodeDecodeError):
        return fallback


__all__ = ["JobFailedError", "ServiceClient", "ServiceError"]
