"""A small stdlib HTTP client for the analysis service daemon.

:class:`ServiceClient` wraps :mod:`urllib.request` around the daemon's
JSON API — submit jobs, poll or stream results, ingest corpus documents,
read health and stats.  It is what ``repro submit`` / ``repro jobs``
use, what the tests drive the daemon with, and a reference for talking
to the service from any other HTTP client::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8741")
    client.ingest([["0xabc...", contract_source]])
    job = client.submit([["q1", snippet]], analyses=["ccd", "ccc"])
    finished = client.wait(job["id"])
    for envelope in finished["results"]:
        print(envelope["analyzer"], envelope["contract_id"])

Failures surface as :class:`ServiceError` carrying the HTTP status and
the daemon's ``error`` message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, Optional


class ServiceError(RuntimeError):
    """An HTTP error from the daemon (status code + server message)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class JobFailedError(ServiceError):
    """A waited-on job finished in the ``failed`` state."""

    def __init__(self, job: dict):
        super().__init__(200, f"job {job.get('id')} failed: {job.get('error')}")
        self.job = job


class ServiceClient:
    """Talk to a running :class:`~repro.service.server.AnalysisService`.

    Parameters
    ----------
    base_url:
        E.g. ``http://127.0.0.1:8741`` (trailing slash tolerated).
    timeout:
        Per-request socket timeout in seconds.
    connect_timeout:
        For how many seconds a *connection-refused* failure is retried
        with bounded exponential backoff before being raised.  The
        default ``0.0`` fails immediately (a dead daemon stays a fast,
        loud error); the cluster coordinator and the test harness set a
        budget so requests racing a daemon's startup (or a worker's
        restart) wait instead of flaking.
    """

    #: first backoff sleep after a refused connection, in seconds
    RETRY_INITIAL_DELAY = 0.05
    #: backoff sleeps never exceed this, keeping retries responsive
    RETRY_MAX_DELAY = 1.0

    def __init__(self, base_url: str, timeout: float = 60.0,
                 connect_timeout: float = 0.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.connect_timeout = connect_timeout

    # -- plumbing -------------------------------------------------------------
    def _urlopen(self, request: urllib.request.Request):
        """``urlopen`` with bounded-backoff retries on connection refused.

        Only a refused TCP connection is retried (the daemon is not
        listening *yet*); every other failure — HTTP errors, timeouts,
        resets mid-request — propagates immediately.
        """
        deadline = time.monotonic() + self.connect_timeout
        delay = self.RETRY_INITIAL_DELAY
        while True:
            try:
                return urllib.request.urlopen(request, timeout=self.timeout)
            except urllib.error.HTTPError:
                raise
            except urllib.error.URLError as error:
                refused = isinstance(error.reason, ConnectionRefusedError)
                if not refused or time.monotonic() >= deadline:
                    raise
            time.sleep(min(delay, max(deadline - time.monotonic(), 0.0)))
            delay = min(delay * 2, self.RETRY_MAX_DELAY)

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        request = urllib.request.Request(
            self.base_url + path, method=method,
            headers={"Content-Type": "application/json"},
            data=json.dumps(payload).encode("utf-8") if payload is not None else None)
        try:
            with self._urlopen(request) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise ServiceError(error.code, _error_message(error)) from None

    def wait_ready(self, timeout: float = 30.0) -> dict:
        """Poll ``/v1/healthz`` until the daemon answers; returns its payload.

        Unlike :attr:`connect_timeout` (which only covers a refused
        connection), this also rides out reset or half-open sockets of a
        daemon that is still binding.  Raises :class:`TimeoutError` when
        the daemon never comes up.
        """
        deadline = time.monotonic() + timeout
        delay = self.RETRY_INITIAL_DELAY
        while True:
            try:
                return self.healthz()
            except (ServiceError, OSError) as error:
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"daemon at {self.base_url} not ready "
                        f"after {timeout:.1f}s: {error}") from error
            time.sleep(min(delay, max(deadline - time.monotonic(), 0.0)))
            delay = min(delay * 2, self.RETRY_MAX_DELAY)

    # -- jobs -----------------------------------------------------------------
    def submit(self, sources, analyses, options: Optional[dict] = None) -> dict:
        """Submit a job; returns the queued job's wire form (with ``id``)."""
        body = {"sources": [list(pair) for pair in sources],
                "analyses": list(analyses)}
        if options is not None:
            body["options"] = options
        return self._request("POST", "/v1/jobs", body)["job"]

    def job(self, job_id: int, results: bool = True) -> dict:
        """One job's status envelope: ``{"job": {...}, "results": [...]}``.

        ``results=False`` asks the daemon to omit the result envelopes
        (``?results=0``) — the cheap form :meth:`wait` polls with.
        """
        path = f"/v1/jobs/{job_id}"
        if not results:
            path += "?results=0"
        return self._request("GET", path)

    def jobs(self, state: Optional[str] = None, limit: int = 100) -> list:
        """Recent jobs (newest first), optionally filtered by state."""
        path = f"/v1/jobs?limit={limit}"
        if state is not None:
            path += f"&state={state}"
        return self._request("GET", path)["jobs"]

    def wait(self, job_id: int, timeout: float = 120.0, poll: float = 0.05) -> dict:
        """Poll until the job completes; returns its final status envelope.

        Raises :class:`JobFailedError` when the job fails and
        :class:`TimeoutError` when it does not finish in time.
        """
        deadline = time.monotonic() + timeout
        while True:
            # poll without results; download the envelopes exactly once
            status = self.job(job_id, results=False)
            if status["job"]["state"] == "done":
                return self.job(job_id)
            if status["job"]["state"] == "failed":
                raise JobFailedError(status["job"])
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['job']['state']} "
                    f"after {timeout:.1f}s")
            time.sleep(poll)

    def stream(self, job_id: int, timeout: Optional[float] = None,
               raw: bool = False) -> Iterator:
        """Yield result envelopes as the daemon streams them (NDJSON lines).

        With ``raw=True`` the undecoded line bytes are yielded instead —
        these are exactly the canonical-JSON bytes of each envelope,
        which is what the byte-parity tests compare.
        """
        path = f"/v1/jobs/{job_id}/stream"
        if timeout is not None:
            path += f"?timeout={timeout}"
        request = urllib.request.Request(self.base_url + path)
        try:
            response = self._urlopen(request)
        except urllib.error.HTTPError as error:
            raise ServiceError(error.code, _error_message(error)) from None
        with response:
            for line in response:
                line = line.rstrip(b"\n")
                if not line:
                    continue
                yield line if raw else json.loads(line.decode("utf-8"))

    # -- corpus and introspection ---------------------------------------------
    def ingest(self, documents=None, remove=None) -> dict:
        """Ingest ``[id, source]`` documents into the live CCD index.

        ``remove`` lists document ids to retire from the index instead;
        a single call may carry both (removals are applied first).
        """
        body: dict = {}
        if documents is not None:
            body["documents"] = [list(pair) for pair in documents]
        if remove is not None:
            body["remove"] = list(remove)
        return self._request("POST", "/v1/corpus", body)

    def corpus(self) -> dict:
        """The ids currently in the daemon's index (``GET /v1/corpus``)."""
        return self._request("GET", "/v1/corpus")

    def healthz(self) -> dict:
        """The daemon's liveness payload."""
        return self._request("GET", "/v1/healthz")

    def stats(self) -> dict:
        """The daemon's counters (cache, index, match stats, queue)."""
        return self._request("GET", "/v1/stats")

    # -- cluster coordinator ---------------------------------------------------
    def cluster(self) -> dict:
        """Cluster topology and per-shard health (coordinator only)."""
        return self._request("GET", "/v1/cluster")

    def rebalance(self) -> dict:
        """Move documents whose ring owner changed (coordinator only)."""
        return self._request("POST", "/v1/cluster/rebalance", {})


def _error_message(error: urllib.error.HTTPError) -> str:
    """The daemon's ``error`` field, or the raw body when not JSON."""
    try:
        body = error.read().decode("utf-8")
        return json.loads(body).get("error", body)
    except (ValueError, UnicodeDecodeError):
        return error.reason


__all__ = ["JobFailedError", "ServiceClient", "ServiceError"]
