"""``repro.service`` — the analysis service daemon.

Everything below the service was built batch-first: the CLI, the study
pipeline, and :class:`~repro.api.session.AnalysisSession` all pay index
and parse warm-up per invocation and exit.  This package turns the same
substrate into a *servable system*: a long-lived daemon holding one warm
session (parse-once artifact store + executor pool) and one live CCD
index, fed by a persistent job queue, fronted by a stdlib HTTP API.

* :mod:`repro.service.jobstore` — SQLite-backed persistent job queue
  (``queued → running → done/failed``), crash-safe: a killed daemon
  requeues its in-flight jobs on restart, with no losses or duplicates,
* :mod:`repro.service.scheduler` — the worker pool draining the queue
  FIFO through the resident session, streaming envelopes into the store
  as they complete,
* :mod:`repro.service.server` — :class:`AnalysisService` and the HTTP
  endpoints (``POST /v1/jobs``, ``GET /v1/jobs/{id}[/stream]``,
  ``POST /v1/corpus``, ``GET /v1/healthz``, ``GET /v1/stats``),
* :mod:`repro.service.gateway` — :class:`AsyncGateway`, the asyncio
  HTTP front end (``repro serve --frontend asyncio``) adding admission
  control: bounded queues, per-tenant quotas, priority lanes, and
  content-hash request coalescing,
* :mod:`repro.service.client` — the small stdlib client (pooled
  keep-alive connections) used by ``repro submit`` / ``repro jobs``
  and the tests,
* :mod:`repro.service.hashring` — the deterministic consistent-hash
  ring partitioning corpus documents across shards,
* :mod:`repro.service.coordinator` — :class:`ClusterCoordinator`, the
  scatter-gather front of an N-worker cluster whose merged responses
  are byte-identical to a single-node daemon over the same corpus.

Start a daemon with ``repro serve --data-dir DIR`` (see ``docs/service.md``)
or in-process::

    from repro.service import AnalysisService, ServiceConfig

    with AnalysisService(ServiceConfig(data_dir="svc", port=0)) as service:
        print(service.url)

A cluster is the same daemons plus a coordinator::

    repro serve --role coordinator --workers URL1,URL2 --data-dir coord
"""

from repro.service.client import JobFailedError, ServiceClient, ServiceError
from repro.service.coordinator import ROUTES as COORDINATOR_ROUTES
from repro.service.coordinator import ClusterCoordinator, CoordinatorConfig
from repro.service.gateway import ROUTES as GATEWAY_ROUTES
from repro.service.gateway import (
    AsyncGateway,
    GatewayConfig,
    TenantQuota,
    load_tenant_quotas,
)
from repro.service.hashring import HashRing
from repro.service.jobstore import JOB_STATES, PRIORITY_LANES, Job, JobStore
from repro.service.scheduler import Scheduler
from repro.service.server import (
    ROUTES,
    AnalysisService,
    ServiceConfig,
    ServiceValidationError,
)

__all__ = [
    "AnalysisService",
    "AsyncGateway",
    "COORDINATOR_ROUTES",
    "ClusterCoordinator",
    "CoordinatorConfig",
    "GATEWAY_ROUTES",
    "GatewayConfig",
    "HashRing",
    "JOB_STATES",
    "Job",
    "JobFailedError",
    "JobStore",
    "PRIORITY_LANES",
    "ROUTES",
    "Scheduler",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceValidationError",
    "TenantQuota",
    "load_tenant_quotas",
]
