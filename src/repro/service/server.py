"""The analysis service daemon: a stdlib HTTP API over one warm session.

:class:`AnalysisService` keeps the expensive state of the reproduction
*resident* — one :class:`~repro.api.session.AnalysisSession` (a warm
parse-once artifact store plus an executor pool) and one live
:class:`~repro.ccd.detector.CloneDetector` index — and serves analysis
jobs over HTTP (:class:`http.server.ThreadingHTTPServer`; no third-party
web framework, per the project's stdlib-only rule).  Every batch entry
point pays index/parse warm-up per invocation; the daemon pays it once
per process and amortizes it over every request.

Endpoints (see ``docs/service.md`` for the full reference):

* ``POST /v1/jobs`` — submit sources + analyses; returns the queued job,
* ``GET /v1/jobs`` — list recent jobs,
* ``GET /v1/jobs/{id}`` — poll one job's status and result envelopes,
* ``GET /v1/jobs/{id}/stream`` — chunked NDJSON envelopes as they
  complete (jobs run through ``Executor.imap_batches`` underneath),
* ``POST /v1/corpus`` — ingest documents into the live CCD index,
  persisted incrementally via :func:`repro.ccd.index_io.append_to_index`,
* ``GET /v1/healthz`` / ``GET /v1/stats`` — liveness and counters
  (cache hit rates, match stats, queue depth).

Durability: jobs live in a :class:`~repro.service.jobstore.JobStore`
(SQLite) and survive restarts — on startup, jobs a killed daemon left
``running`` are requeued and drained again, and the CCD index reloads
from its sharded on-disk form with zero parses.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qs, urlparse

from repro.api.registry import REGISTRY
from repro.api.session import AnalysisSession, SessionConfig
from repro.ccd.detector import CloneDetector
from repro.ccd.index_io import MANIFEST_NAME, append_to_index
from repro.ccd.score_memo import SCORE_MEMO_NAME, ScoreMemoTable
from repro.core.artifacts import content_key
from repro.service.delta import (
    SOURCES_DATABASE_NAME,
    DeltaError,
    SourceJournal,
    resolve_ingest_documents,
)
from repro.service.jobstore import (
    DEFAULT_BATCH_AGING,
    JOB_STATES,
    JOBS_DATABASE_NAME,
    PRIORITY_LANES,
    TERMINAL_STATES,
    Job,
    JobStore,
)
from repro.service.scheduler import ReadWriteLock, Scheduler
from repro.service.workloads import (
    ROUTES as WORKLOAD_ROUTES,
    WorkloadError,
    validate_workload_request,
    workload_payload,
    workloads_listing_payload,
)

#: every HTTP route the daemon serves — kept in lockstep with
#: ``docs/service.md`` by ``tools/check_api.py``; the workload-engine
#: routes (cancel, workloads, queries) ride along from ``workloads.py``
ROUTES = tuple(sorted((
    ("GET", "/v1/corpus"),
    ("GET", "/v1/healthz"),
    ("GET", "/v1/jobs"),
    ("GET", "/v1/jobs/{id}"),
    ("GET", "/v1/jobs/{id}/stream"),
    ("GET", "/v1/stats"),
    ("POST", "/v1/corpus"),
    ("POST", "/v1/jobs"),
) + WORKLOAD_ROUTES))

#: file inside the data dir persisting registered custom query specs
QUERIES_FILE_NAME = "queries.json"

#: subdirectory of the data dir holding the persisted CCD index
INDEX_DIRECTORY_NAME = "index"

#: subdirectory of the data dir holding the disk artifact cache
CACHE_DIRECTORY_NAME = "cache"


class ServiceValidationError(ValueError):
    """A request body failed validation (mapped to HTTP 400)."""


def validate_sources(sources, what: str) -> list:
    """Validate a ``[[id, source], ...]`` wire list into ``(id, source)`` pairs."""
    if not isinstance(sources, (list, tuple)) or not sources:
        raise ServiceValidationError(
            f"{what!r} must be a non-empty list of [id, source] pairs")
    validated = []
    for pair in sources:
        if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                or not isinstance(pair[0], (str, int))
                or not isinstance(pair[1], str)):
            raise ServiceValidationError(
                f"every item of {what!r} must be an [id, source] pair "
                f"(id: string or integer, source: string)")
        validated.append((pair[0], pair[1]))
    return validated


def validate_job_request(sources, analyses, options, registry) -> tuple:
    """Validate one job submission; returns ``(sources, analyses, options)``.

    Shared by the single-node daemon and the cluster coordinator (which
    validates against the global registry before fanning out), so a bad
    request is rejected with the same 400 on every topology.
    """
    sources = validate_sources(sources, what="sources")
    if not isinstance(analyses, (list, tuple)) or not analyses:
        raise ServiceValidationError(
            "'analyses' must be a non-empty list of analyzer ids")
    for analyzer_id in analyses:
        if not isinstance(analyzer_id, str):
            raise ServiceValidationError(
                "'analyses' must contain analyzer id strings")
        if analyzer_id not in registry:
            raise ServiceValidationError(
                f"unknown analyzer {analyzer_id!r}; registered: "
                f"{', '.join(registry.ids())}")
        if registry.get(analyzer_id).scope != "contract":
            raise ServiceValidationError(
                f"analyzer {analyzer_id!r} is corpus-scope and needs "
                f"typed dataset inputs; the service API only runs "
                f"contract-scope analyzers")
    if options is None:
        options = {}
    if not isinstance(options, dict):
        raise ServiceValidationError("'options' must be an object")
    return sources, list(analyses), options


def validate_priority(priority) -> str:
    """Validate a wire ``priority`` field into a lane name.

    ``None`` (field omitted) means the default batch lane, so clients
    predating priority lanes keep their exact scheduling behavior.
    """
    if priority is None:
        return "batch"
    if priority not in PRIORITY_LANES:
        raise ServiceValidationError(
            f"'priority' must be one of {'|'.join(PRIORITY_LANES)}")
    return priority


def validate_document_ids(document_ids, what: str) -> list:
    """Validate a wire list of document ids (string or integer)."""
    if document_ids is None:
        return []
    if not isinstance(document_ids, (list, tuple)) or any(
            not isinstance(document_id, (str, int))
            for document_id in document_ids):
        raise ServiceValidationError(
            f"{what!r} must be a list of document ids (string or integer)")
    return list(document_ids)


@dataclass(frozen=True)
class ServiceConfig:
    """Typed configuration of an :class:`AnalysisService` daemon.

    Extends the session knobs of
    :class:`~repro.api.session.SessionConfig` with the daemon's own:
    bind address, data directory (job store + index + cache), worker
    count, and index shard layout.
    """

    #: directory holding ``jobs.sqlite``, ``index/``, and ``cache/``
    data_dir: str = "repro-service"
    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral free port (see ``port`` property)
    port: int = 8741
    #: executor backend of the resident session
    backend: str = "thread"
    max_workers: Optional[int] = None
    chunk_size: int = 8
    #: scheduler worker threads (1 = strict FIFO job execution)
    workers: int = 1
    #: disk artifact cache under ``data_dir/cache`` (warm restarts)
    cache: bool = True
    #: CCD configuration of the resident index (must match a reloaded one)
    ngram_size: int = 3
    fingerprint_block_size: int = 2
    fingerprint_window: int = 4
    ngram_threshold: float = 0.5
    similarity_threshold: float = 0.7
    similarity_backend: str = "bounded"
    checker_timeout: Optional[float] = None
    stream_window: int = 4
    #: hash-prefix shards of the persisted index
    index_shards: int = 4
    #: idle queue-poll interval of the scheduler and the stream endpoint
    poll_interval: float = 0.05
    #: emit one access-log line per request to stderr
    log_requests: bool = False
    #: HTTP front end: ``threaded`` (thread per connection) or ``asyncio``
    #: (event-loop gateway with admission control; see ``gateway.py``)
    frontend: str = "threaded"
    #: asyncio gateway: queued+running jobs beyond this are shed with 503
    max_pending_jobs: int = 256
    #: asyncio gateway: open connections beyond this are shed with 503
    max_connections: int = 1024
    #: asyncio gateway: path of a TOML/JSON per-tenant quota file
    tenant_quotas: Optional[str] = None
    #: asyncio gateway: coalesce concurrent identical job submissions
    coalesce: bool = True
    #: interactive claims a waiting batch job tolerates before it is served
    batch_aging: int = DEFAULT_BATCH_AGING

    def session_config(self) -> SessionConfig:
        """The resident session this daemon configuration describes."""
        cache_dir = str(Path(self.data_dir) / CACHE_DIRECTORY_NAME) \
            if self.cache else None
        return SessionConfig(
            backend=self.backend,
            max_workers=self.max_workers,
            chunk_size=self.chunk_size,
            cache_dir=cache_dir,
            ngram_size=self.ngram_size,
            fingerprint_block_size=self.fingerprint_block_size,
            fingerprint_window=self.fingerprint_window,
            ngram_threshold=self.ngram_threshold,
            similarity_threshold=self.similarity_threshold,
            similarity_backend=self.similarity_backend,
            # jobs that decline the resident index still share the
            # persistent corpus-global pair-score memo
            score_memo_path=str(
                Path(self.data_dir) / INDEX_DIRECTORY_NAME / SCORE_MEMO_NAME),
            checker_timeout=self.checker_timeout,
            stream_window=self.stream_window,
        )


class AnalysisService:
    """The resident daemon: warm session + live index + queue + HTTP API.

    Constructing the service performs crash recovery (requeueing jobs a
    killed daemon left ``running``) and reloads the persisted CCD index
    with zero parses; :meth:`start` binds the HTTP server and spawns the
    scheduler workers.  Use as a context manager, or pair
    :meth:`start`/:meth:`stop` (both idempotent).
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config if config is not None else ServiceConfig()
        if self.config.frontend not in ("threaded", "asyncio"):
            raise ValueError(
                f"frontend must be 'threaded' or 'asyncio', "
                f"not {self.config.frontend!r}")
        self.data_dir = Path(self.config.data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.started_at = time.time()
        self.session = AnalysisSession(self.config.session_config())
        self.jobstore = JobStore(self.data_dir / JOBS_DATABASE_NAME,
                                 batch_aging=self.config.batch_aging)
        #: jobs requeued from a previous daemon's crash, for /v1/stats
        self.recovered_jobs = self.jobstore.recover()
        self.index_dir = self.data_dir / INDEX_DIRECTORY_NAME
        self.detector = self._open_detector()
        #: retained sources backing the diff ingest form and `repro watch`
        self.source_journal = SourceJournal(
            self.data_dir / SOURCES_DATABASE_NAME)
        self._work_lock = ReadWriteLock()
        self.scheduler = Scheduler(
            self.session, self.jobstore,
            resolve_options=self._job_options,
            workers=self.config.workers,
            poll_interval=self.config.poll_interval,
            work_lock=self._work_lock,
        )
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._gateway = None  # AsyncGateway when frontend == "asyncio"
        self._stop_requested = threading.Event()
        self._stopped = False
        self.queries_path = self.data_dir / QUERIES_FILE_NAME
        #: custom queries reloaded from a previous daemon's registrations
        self.reloaded_queries = self._load_custom_queries()

    def _load_custom_queries(self) -> int:
        """Re-register the custom DSL queries persisted in this data dir."""
        return load_custom_queries(self.queries_path)

    def _open_detector(self) -> CloneDetector:
        """Reload the persisted index (zero parses) or start an empty one."""
        config = self.config
        if (self.index_dir / MANIFEST_NAME).exists():
            detector = CloneDetector.load(self.index_dir, store=self.session.store)
            # the structural parameters (N-gram size, fuzzy-hash shape) are
            # baked into the persisted artifacts and validated by load();
            # the thresholds are query-time knobs and follow the daemon
            # configuration, so /v1/stats never misreports the live values
            detector.ngram_threshold = config.ngram_threshold
            detector.similarity_threshold = config.similarity_threshold
            if not detector.score_memo.persistent:
                # indexes saved before the score-memo tier existed: attach
                # one now so this daemon's scores survive its restarts
                detector.score_memo.persist_to(self.index_dir / SCORE_MEMO_NAME)
            return detector
        return CloneDetector(
            ngram_size=config.ngram_size,
            ngram_threshold=config.ngram_threshold,
            similarity_threshold=config.similarity_threshold,
            fingerprint_block_size=config.fingerprint_block_size,
            fingerprint_window=config.fingerprint_window,
            store=self.session.store,
            similarity_backend=config.similarity_backend,
            # write-through from the first ingest: pair scores computed by
            # this daemon are warm for the next one over the same data dir
            score_memo=ScoreMemoTable(self.index_dir / SCORE_MEMO_NAME),
        )

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Bind the HTTP front end and start draining the queue (idempotent)."""
        if self._httpd is not None or self._gateway is not None:
            return
        self.scheduler.start()
        if self.config.frontend == "asyncio":
            # imported lazily: gateway.py imports this module at top level
            from repro.service.gateway import AsyncGateway, GatewayConfig
            self._gateway = AsyncGateway(
                self, GatewayConfig.from_service_config(self.config))
            self._gateway.start()
            return
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _handler_class(self))
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http",
            daemon=True)
        self._http_thread.start()

    @property
    def port(self) -> int:
        """The actually bound TCP port (resolves ``port=0`` requests)."""
        if self._gateway is not None:
            return self._gateway.port
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self.config.port

    @property
    def url(self) -> str:
        """Base URL of the running daemon."""
        return f"http://{self.config.host}:{self.port}"

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to return (signal-handler safe)."""
        self._stop_requested.set()

    def stop(self) -> None:
        """Graceful shutdown: HTTP first, then workers, then state (idempotent).

        The in-flight job finishes and is persisted; queued jobs stay
        queued for the next daemon over the same data directory.
        """
        if self._stopped:
            return
        self._stopped = True
        self._stop_requested.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join()
            self._http_thread = None
        if self._gateway is not None:
            self._gateway.stop()
            self._gateway = None
        self.scheduler.close()
        self.session.close()
        self.jobstore.close()
        self.source_journal.close()

    def serve_forever(self) -> None:
        """Run until :meth:`request_stop` (or Ctrl-C), then shut down."""
        self.start()
        try:
            self._stop_requested.wait()
        except KeyboardInterrupt:
            pass
        self.stop()

    def __enter__(self) -> "AnalysisService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- operations (shared by HTTP handlers, the CLI, and tests) -------------
    def submit(self, sources, analyses, options: Optional[dict] = None,
               priority: Optional[str] = None,
               tenant: Optional[str] = None) -> Job:
        """Validate and enqueue a job, waking the scheduler.

        Parameters
        ----------
        sources:
            ``[[id, source], ...]`` wire pairs to analyze.
        analyses:
            Analyzer ids to run, in order.
        options:
            Per-analyzer option mapping.
        priority:
            Scheduling lane (``interactive`` or ``batch``; the default).
        tenant:
            Tenant label recorded with the job (``X-Repro-Tenant``).
        """
        sources, analyses, options = validate_job_request(
            sources, analyses, options, self.session.registry)
        priority = validate_priority(priority)
        job = self.jobstore.submit(sources, analyses, options,
                                   priority=priority, tenant=tenant)
        self.scheduler.notify()
        return job

    def submit_workload(self, body, tenant: Optional[str] = None) -> Job:
        """Validate and enqueue one workload job, waking the scheduler.

        ``body`` is the ``POST /v1/workloads`` wire object (``kind`` +
        ``params`` + optional ``priority``/``chunks``); the validated
        descriptor is persisted with the job so a restarted daemon can
        resume it from its completed chunks.
        """
        try:
            descriptor = validate_workload_request(body)
        except WorkloadError as error:
            raise ServiceValidationError(str(error)) from error
        priority = validate_priority(body.get("priority"))
        job = self.jobstore.submit(
            [], [], priority=priority, tenant=tenant, workload=descriptor)
        self.scheduler.notify()
        return job

    def cancel_job(self, job_id: int) -> Optional[str]:
        """Cancel one job; returns its (possibly unchanged) state.

        Queued jobs are dropped immediately; running workloads stop at
        the next chunk boundary (their completed chunks stay persisted
        for a later resume); terminal jobs are left untouched.  Returns
        ``None`` for unknown ids.
        """
        return self.jobstore.cancel(job_id)

    def resume_workload(self, job_id: int) -> Job:
        """Requeue a failed/cancelled workload job, reusing done chunks."""
        job = self.jobstore.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if job.workload is None:
            raise ServiceValidationError(
                f"job {job_id} is not a workload job")
        try:
            job = self.jobstore.requeue(job_id)
        except ValueError as error:
            raise ServiceValidationError(str(error)) from error
        self.scheduler.notify()
        return job

    def register_query_spec(self, spec) -> dict:
        """Validate, register, and persist one custom DSL query.

        The spec is pure data (see :mod:`repro.ccc.custom`) — nothing in
        it is executed.  Registered specs are persisted to
        ``queries.json`` in the data dir and reloaded on daemon startup,
        so a custom query survives restarts like the rest of the state.
        """
        return register_custom_query(spec, self.queries_path)

    def queries_payload(self) -> dict:
        """The ``GET /v1/queries`` body: every active ccc query."""
        return custom_queries_payload()

    def ingest(self, documents, remove=()) -> dict:
        """Add documents to the live CCD index and persist them incrementally.

        New sources become matchable immediately — no restart, no full
        re-index: the in-memory N-gram index is appended live, and only
        the on-disk shards the new documents hash into are rewritten.
        Unparsable documents are reported in ``rejected``, and
        re-ingesting a known id replaces its indexed fingerprint — a
        known id re-ingested with unparsable source is *retired* from
        the index (in memory and on disk) rather than left matchable.

        Each ``documents`` item is a classic ``[id, source]`` pair or a
        delta object (``{"id", "source"|"diff", "base_version"}``; see
        :mod:`repro.service.delta`) — diffs are applied against the
        retained copy of the source, and a stale ``base_version`` is
        rejected with 400.  Re-ingesting byte-identical source is a
        no-op (reported in ``unchanged``): zero parses, zero score-memo
        transitions, zero shards rewritten for that document.

        ``remove`` lists document ids to drop from the index entirely
        (the cluster coordinator uses this to rebalance shards); ids the
        index never held are ignored.  Removals are applied before the
        ingests of the same call.
        """
        remove = validate_document_ids(remove, what="remove")
        if documents is None and remove:
            documents = []
        else:
            try:
                documents = resolve_ingest_documents(
                    documents, self.source_journal.get)
            except DeltaError as error:
                raise ServiceValidationError(str(error)) from error
        # duplicate ids within one batch collapse to the last occurrence,
        # so the persisted shards never carry two rows for one document
        documents = list({document_id: (document_id, source)
                          for document_id, source in documents}.values())
        with self._work_lock.write():  # exclusive: no matching during mutation
            detector = self.detector
            ingested, rejected, retired, removed, unchanged = [], [], [], [], []
            for document_id in remove:
                if detector.remove_fingerprint(document_id) is not None:
                    removed.append(document_id)
                    self.source_journal.forget(document_id)
                if document_id in detector.parse_failures:
                    detector.parse_failures.remove(document_id)
            for document_id, source in documents:
                source_key = content_key(source)
                if (detector.source_keys.get(document_id) == source_key
                        and document_id in detector.fingerprints):
                    # no-op fast path: identical bytes change nothing, so
                    # skip the retire/rebuild (and the shard rewrite) entirely
                    unchanged.append(document_id)
                    continue
                previously_indexed = document_id in detector.fingerprints
                if detector.add_document(document_id, source):
                    ingested.append(document_id)
                    self.source_journal.record(document_id, source, source_key)
                    # a fixed re-ingest clears the old failure record
                    if document_id in detector.parse_failures:
                        detector.parse_failures.remove(document_id)
                else:
                    rejected.append(document_id)
                    if previously_indexed:
                        # replace semantics: an unparsable re-ingest retires
                        # the stale fingerprint instead of leaving it matchable
                        # (and releases its subs from the score memo)
                        detector.remove_fingerprint(document_id)
                        retired.append(document_id)
                        self.source_journal.forget(document_id)
            # one failure record per document, however often it was re-posted
            detector.parse_failures[:] = dict.fromkeys(detector.parse_failures)
            # rejected batches still persist the parse-failure record;
            # an all-unchanged batch touches no file at all
            if ingested or retired or removed or rejected:
                summary = append_to_index(
                    detector, self.index_dir, ingested,
                    shards=self.config.index_shards,
                    remove_ids=retired + removed)
                shards_rewritten = summary["shards_rewritten"]
            else:
                shards_rewritten = 0
        return {
            "ingested": len(ingested),
            "rejected": rejected,
            "removed": removed,
            "unchanged": len(unchanged),
            "documents": len(self.detector),
            "parse_failures": len(self.detector.parse_failures),
            "shards_rewritten": shards_rewritten,
        }

    def corpus(self) -> dict:
        """The ``GET /v1/corpus`` payload: which ids this index holds.

        The cluster harness uses this to assert that routed ingest put
        every document on exactly the shard the hash ring predicts.
        """
        with self._work_lock.read():  # a stable snapshot against ingest
            document_ids = sorted(self.detector.fingerprints, key=str)
        return {"count": len(document_ids), "documents": document_ids}

    def health(self) -> dict:
        """The ``/v1/healthz`` payload: liveness plus queue depth."""
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": self.jobstore.queue_depth(),
        }

    def stats(self) -> dict:
        """The ``/v1/stats`` payload: cache, index, match, and queue counters."""
        store_stats = self.session.stats.as_dict()
        store_stats["hit_rate"] = self.session.stats.hit_rate
        return {
            "uptime_seconds": time.time() - self.started_at,
            "jobs": self.jobstore.counts(),
            "jobs_completed": self.scheduler.jobs_completed,
            "jobs_failed": self.scheduler.jobs_failed,
            "jobs_by_lane": dict(self.scheduler.jobs_by_lane),
            "recovered_jobs": self.recovered_jobs,
            "store": store_stats,
            "index": {
                "documents": len(self.detector),
                "parse_failures": len(self.detector.parse_failures),
                "similarity_backend": self.detector.similarity_backend,
            },
            "score_memo": self.detector.score_memo.as_dict(),
            "match_stats": dataclasses.asdict(self.detector.match_stats),
            # the incremental-analysis counters, next to score_memo: how
            # much function-level work re-ingest and re-analysis reused
            "incremental": {
                "function_hits": self.session.stats.function_hits,
                "function_misses": self.session.stats.function_misses,
                "function_parses": self.session.stats.function_parses,
                "delta_assemblies": self.session.stats.delta_assemblies,
                "delta_fallbacks": self.session.stats.delta_fallbacks,
                "functions_reused": self.detector.match_stats.functions_reused,
                "functions_reanalyzed":
                    self.detector.match_stats.functions_reanalyzed,
                "sources_retained": self.source_journal.count(),
            },
            "config": {
                "backend": self.config.backend,
                "workers": self.config.workers,
                "ngram_size": self.config.ngram_size,
                "similarity_threshold": self.config.similarity_threshold,
            },
        }

    def _job_options(self, job: Job) -> dict:
        """Thread the resident index into ``ccd`` jobs (unless opted out).

        The resident index is authoritative even when empty — an
        un-ingested daemon answers ``ccd`` jobs with zero matches rather
        than silently switching to self-indexing the submitted sources
        (``{"ccd": {"resident": false}}`` requests that explicitly).
        """
        options = {key: dict(value) if isinstance(value, dict) else value
                   for key, value in job.options.items()}
        if "ccd" in job.analyses:
            ccd_options = options.setdefault("ccd", {})
            if ccd_options.pop("resident", True):
                ccd_options["detector"] = self.detector
        return options

    @staticmethod
    def _validated_sources(sources, what: str) -> list:
        return validate_sources(sources, what)


def _query_int(query: dict, name: str, default: int) -> int:
    """Parse one integer query parameter (400 on garbage)."""
    raw = query.get(name, [str(default)])[0]
    try:
        return int(raw)
    except ValueError:
        raise ServiceValidationError(f"'{name}' must be an integer") from None


def jobs_listing_payload(jobstore, query: dict) -> dict:
    """The ``GET /v1/jobs`` body for one parsed query string.

    Shared by the threaded handlers and the asyncio gateway so both
    front ends serve byte-identical listings.  Supports pagination
    (``limit``/``offset``) and filtering (``state``/``tenant``); raises
    :class:`ServiceValidationError` on malformed parameters.
    """
    state = query.get("state", [None])[0]
    if state is not None and state not in JOB_STATES:
        raise ServiceValidationError(
            f"'state' must be one of {'|'.join(JOB_STATES)}")
    tenant = query.get("tenant", [None])[0]
    limit = _query_int(query, "limit", 100)
    offset = _query_int(query, "offset", 0)
    jobs = jobstore.list_jobs(state=state, limit=limit, offset=offset,
                              tenant=tenant)
    return {
        "jobs": [job.as_dict() for job in jobs],
        "total": jobstore.count_jobs(state=state, tenant=tenant),
        "limit": limit,
        "offset": offset,
    }


def job_status_payload(jobstore, job: Job, query: dict) -> dict:
    """The ``GET /v1/jobs/{id}`` body for one parsed query string.

    Shared by the threaded handlers and the asyncio gateway.
    ``?results=0`` is the cheap status poll: clients following a long
    job should not re-download every envelope on every poll.
    """
    payload = {"job": job.as_dict(include_corpus="corpus" in query)}
    if query.get("results", ["1"])[0] not in ("0", "false", "none"):
        rows = jobstore.results(job.job_id)
        payload["results"] = [json.loads(envelope) for _seq, envelope in rows]
    return payload


def load_custom_queries(path: Path) -> int:
    """Re-register the custom DSL query specs persisted at ``path``.

    Called at daemon startup (single-node and coordinator alike) so a
    custom query registered over the API survives restarts; returns the
    number of queries reloaded (0 when the file does not exist yet).
    """
    from repro.ccc.custom import compile_query
    from repro.ccc.registry import register_query
    if not path.exists():
        return 0
    specs = json.loads(path.read_text(encoding="utf-8"))
    for spec in specs:
        register_query(compile_query(spec), replace=True)
    return len(specs)


def register_custom_query(spec, path: Path) -> dict:
    """Validate, register, and persist one custom DSL query spec.

    The spec never executes — it compiles onto the fixed predicate
    vocabulary of :mod:`repro.ccc.custom`.  The stored file at ``path``
    keeps one normalized spec per query id, so re-registering an id
    replaces its definition.  Raises :class:`ServiceValidationError` on
    a malformed spec (mapped to HTTP 400).
    """
    from repro.ccc.custom import QuerySpecError, compile_query
    from repro.ccc.registry import register_query, registered_queries
    try:
        query = compile_query(spec)
        register_query(query, replace=True)
    except (QuerySpecError, ValueError) as error:
        raise ServiceValidationError(str(error)) from error
    specs = [existing.spec for existing in registered_queries()
             if hasattr(existing, "spec")
             and existing.query_id != query.query_id]
    specs.append(query.spec)
    path.write_text(
        json.dumps(specs, indent=2, sort_keys=True), encoding="utf-8")
    return {"query": query.spec}


def custom_queries_payload() -> dict:
    """The ``GET /v1/queries`` body: every active ccc query.

    Built-ins first (paper order), then custom queries in registration
    order, each flagged ``"custom"`` so clients can tell them apart.
    """
    from repro.ccc.registry import BUILTIN_QUERY_IDS, all_queries
    return {"queries": [
        {
            "query_id": query.query_id,
            "category": query.category.value,
            "title": query.title,
            "custom": query.query_id not in BUILTIN_QUERY_IDS,
        }
        for query in all_queries()
    ]}


def _handler_class(service, base=None):
    """Bind a request-handler class to one service instance.

    ``base`` defaults to the single-node handler; the cluster
    coordinator passes its own handler class.
    """

    class Handler(base if base is not None else _ServiceRequestHandler):
        """The per-server handler (carries its service as a class attr)."""

    Handler.service = service
    return Handler


class _JsonRequestHandler(BaseHTTPRequestHandler):
    """Shared JSON plumbing of the service and coordinator handlers.

    Subclasses route requests onto ``self.service`` — any object with a
    ``jobstore`` attribute and a ``config.log_requests`` flag.
    """

    service = None  # bound by _handler_class
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        """Access-log line (stderr), only when configured."""
        if self.service.config.log_requests:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Optional[dict]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_error_json(400, "request body is not valid JSON")
            return None
        if not isinstance(payload, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return None
        return payload

    def _job_or_404(self, raw_id: str) -> Optional[Job]:
        try:
            job_id = int(raw_id)
        except ValueError:
            self._send_error_json(404, f"malformed job id {raw_id!r}")
            return None
        job = self.service.jobstore.get(job_id)
        if job is None:
            self._send_error_json(404, f"no job {job_id}")
        return job

    # -- GET endpoint bodies --------------------------------------------------
    def _get_jobs(self, query: dict) -> None:
        try:
            payload = jobs_listing_payload(self.service.jobstore, query)
        except ServiceValidationError as error:
            self._send_error_json(400, str(error))
            return
        self._send_json(200, payload)

    def _get_job(self, job: Job, query: dict) -> None:
        self._send_json(
            200, job_status_payload(self.service.jobstore, job, query))

    # -- workload-engine routing (shared: daemon and coordinator) -------------
    def _workload_or_404(self, raw_id: str) -> Optional[Job]:
        job = self._job_or_404(raw_id)
        if job is not None and job.workload is None:
            self._send_error_json(404, f"job {job.job_id} is not a workload")
            return None
        return job

    def _route_workload_get(self, parts: list, query: dict) -> bool:
        """Serve the workload-engine GET endpoints; False when unmatched."""
        if parts == ["v1", "queries"]:
            self._send_json(200, self.service.queries_payload())
            return True
        if parts == ["v1", "workloads"]:
            try:
                payload = workloads_listing_payload(
                    self.service.jobstore, query)
            except (ServiceValidationError, WorkloadError) as error:
                self._send_error_json(400, str(error))
                return True
            self._send_json(200, payload)
            return True
        if len(parts) == 3 and parts[:2] == ["v1", "workloads"]:
            job = self._workload_or_404(parts[2])
            if job is not None:
                self._send_json(200, workload_payload(
                    self.service.jobstore, job,
                    include_chunks="chunks" in query))
            return True
        return False

    def _route_workload_post(self, parts: list, payload: dict) -> bool:
        """Serve the workload-engine POST endpoints; False when unmatched."""
        if parts == ["v1", "workloads"]:
            job = self.service.submit_workload(
                payload, tenant=self.headers.get("X-Repro-Tenant"))
            self._send_json(202, workload_payload(self.service.jobstore, job))
            return True
        if (len(parts) == 4 and parts[:2] == ["v1", "workloads"]
                and parts[3] == "resume"):
            job = self._workload_or_404(parts[2])
            if job is not None:
                job = self.service.resume_workload(job.job_id)
                self._send_json(
                    202, workload_payload(self.service.jobstore, job))
            return True
        if (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                and parts[3] == "cancel"):
            job = self._job_or_404(parts[2])
            if job is not None:
                state = self.service.cancel_job(job.job_id)
                self._send_json(200, {"id": job.job_id, "state": state})
            return True
        if parts == ["v1", "queries"]:
            self._send_json(201, self.service.register_query_spec(payload))
            return True
        return False


class _ServiceRequestHandler(_JsonRequestHandler):
    """Routes ``/v1/*`` requests onto the bound :class:`AnalysisService`."""

    service: AnalysisService  # bound by _handler_class
    server_version = "repro-service"

    # -- routing --------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        """Dispatch GET endpoints."""
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        query = parse_qs(url.query, keep_blank_values=True)
        if parts == ["v1", "healthz"]:
            self._send_json(200, self.service.health())
        elif parts == ["v1", "stats"]:
            self._send_json(200, self.service.stats())
        elif parts == ["v1", "corpus"]:
            self._send_json(200, self.service.corpus())
        elif parts == ["v1", "jobs"]:
            self._get_jobs(query)
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            job = self._job_or_404(parts[2])
            if job is not None:
                self._get_job(job, query)
        elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "stream":
            job = self._job_or_404(parts[2])
            if job is not None:
                self._stream_job(job, query)
        elif not self._route_workload_get(parts, query):
            self._send_error_json(404, f"no such endpoint: GET {url.path}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        """Dispatch POST endpoints."""
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        payload = self._read_body()
        if payload is None:
            return
        try:
            if parts == ["v1", "jobs"]:
                job = self.service.submit(
                    payload.get("sources"), payload.get("analyses"),
                    payload.get("options"),
                    priority=payload.get("priority"),
                    tenant=self.headers.get("X-Repro-Tenant"))
                self._send_json(202, {"job": job.as_dict()})
            elif parts == ["v1", "corpus"]:
                self._send_json(200, self.service.ingest(
                    payload.get("documents"), payload.get("remove", ())))
            elif not self._route_workload_post(parts, payload):
                self._send_error_json(404, f"no such endpoint: POST {url.path}")
        except ServiceValidationError as error:
            self._send_error_json(400, str(error))

    def _stream_job(self, job: Job, query: dict) -> None:
        """Chunked NDJSON: one canonical envelope per line, as they complete.

        The bytes of each line are exactly the stored canonical JSON of
        the envelope, so a streamed job compares byte-for-byte against a
        local batch run.  The stream ends when the job reaches a
        terminal state (or after ``?timeout=seconds``).
        """
        try:
            timeout = float(query["timeout"][0]) if "timeout" in query else None
        except ValueError:
            self._send_error_json(400, "'timeout' must be a number")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        deadline = time.monotonic() + timeout if timeout is not None else None
        last_seq = -1
        try:
            while True:
                # read the state BEFORE the results: envelopes are appended
                # before the job is finished, so a terminal state observed
                # here guarantees the fetch below has the complete tail
                current = self.service.jobstore.get(job.job_id)
                for seq, envelope in self.service.jobstore.results(
                        job.job_id, after=last_seq):
                    self._write_chunk(envelope.encode("utf-8") + b"\n")
                    last_seq = seq
                if current is None or current.state in TERMINAL_STATES:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    break
                time.sleep(self.service.config.poll_interval)
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True  # client hung up mid-stream

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(b"%X\r\n" % len(data) + data + b"\r\n")


__all__ = [
    "AnalysisService",
    "CACHE_DIRECTORY_NAME",
    "INDEX_DIRECTORY_NAME",
    "QUERIES_FILE_NAME",
    "ROUTES",
    "ServiceConfig",
    "ServiceValidationError",
    "custom_queries_payload",
    "job_status_payload",
    "jobs_listing_payload",
    "load_custom_queries",
    "register_custom_query",
    "validate_document_ids",
    "validate_job_request",
    "validate_priority",
    "validate_sources",
]
