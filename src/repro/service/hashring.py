"""Consistent hashing ring partitioning corpus documents across shards.

The cluster coordinator (`repro.service.coordinator`) owns no corpus of
its own: every ingested document is routed to exactly one worker daemon,
chosen by consistent hashing on the document id.  The ring exists so
that membership changes stay cheap — adding one shard to an ``N``-shard
ring moves roughly ``1/(N+1)`` of the keys (only the keys whose owner
actually changed), instead of reshuffling everything the way a bare
``hash(id) % N`` would.

Determinism is load-bearing here: the byte-parity test harness predicts
document placement from outside the coordinator process, so ring points
are derived from SHA-256 (never from ``hash()``, which is salted per
process) and keys are hashed through ``repr`` exactly like
`repro.ccd.index_io.shard_of` hashes on-disk index shards.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple

#: Virtual ring points placed per shard.  More points smooth the key
#: distribution across shards; 64 keeps the per-shard imbalance low for
#: the single-digit shard counts the coordinator targets while keeping
#: ring construction trivially cheap.
DEFAULT_RING_REPLICAS = 64


def _point(value: str) -> int:
    """Map an arbitrary string to a position on the 64-bit ring."""
    digest = hashlib.sha256(value.encode("utf-8", "replace")).hexdigest()
    return int(digest[:16], 16)


def key_point(document_id: Hashable) -> int:
    """Ring position of one document id (hashed via ``repr``, like
    `repro.ccd.index_io.shard_of`, so str/int ids cannot collide)."""
    return _point(repr(document_id))


class HashRing:
    """A deterministic consistent-hash ring over named shard nodes.

    Each node contributes ``replicas`` virtual points; a key is owned by
    the first node point at or clockwise after the key's own point.
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = DEFAULT_RING_REPLICAS):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._nodes: set = set()
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}
        for node in nodes:
            self.add(node)

    def add(self, node: str) -> None:
        """Add one node (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _point(f"{node}#{replica}")
            incumbent = self._owners.get(point)
            if incumbent is not None:
                # A full SHA-256 point collision is astronomically
                # unlikely; break the tie deterministically anyway so
                # every process agrees on the owner.
                if str(node) < str(incumbent):
                    self._owners[point] = node
                continue
            self._owners[point] = node
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        """Remove one node (idempotent); rebuilds the point table."""
        if node not in self._nodes:
            return
        survivors = self._nodes - {node}
        self._nodes = set()
        self._points = []
        self._owners = {}
        for survivor in sorted(survivors):
            self.add(survivor)

    def owner(self, document_id: Hashable) -> str:
        """The node that owns one document id."""
        if not self._points:
            raise ValueError("empty hash ring")
        index = bisect.bisect_right(self._points, key_point(document_id))
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def assignments(self, document_ids: Iterable[Hashable]) -> Dict[Hashable, str]:
        """Map each document id to its owning node."""
        return {document_id: self.owner(document_id) for document_id in document_ids}

    def moved_keys(
        self, document_ids: Iterable[Hashable], other: "HashRing"
    ) -> List[Hashable]:
        """The document ids whose owner differs between this ring and
        ``other`` — i.e. the only keys a rebalance may touch."""
        return [
            document_id
            for document_id in document_ids
            if self.owner(document_id) != other.owner(document_id)
        ]

    @property
    def nodes(self) -> Tuple[str, ...]:
        """All nodes on the ring, in sorted order."""
        return tuple(sorted(self._nodes, key=str))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[str]:
        return iter(self.nodes)


def partition(
    documents: Sequence[Tuple[Hashable, str]], ring: HashRing
) -> Dict[str, List[Tuple[Hashable, str]]]:
    """Split ``[(id, source), ...]`` into per-node batches, preserving
    the submission order inside each batch."""
    batches: Dict[str, List[Tuple[Hashable, str]]] = {}
    for document_id, source in documents:
        batches.setdefault(ring.owner(document_id), []).append((document_id, source))
    return batches
