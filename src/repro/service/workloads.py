"""Durable, resumable evaluation workloads served by the daemon.

A **workload** is one of the repo's evaluation scenarios — the
:mod:`repro.evaluation` suites, the :mod:`repro.baselines` comparisons,
the Figure-9-style parameter sweep — packaged as a first-class job type
of the analysis service.  Each workload decomposes deterministically
into an ordered list of independent **chunks** (one per η/ε grid cell,
per baseline×dataset pair, per smartbugs category, ...); the scheduler
runs the chunks in order, persisting every completed chunk's canonical
JSON result in the :class:`~repro.service.jobstore.JobStore` chunk
table.  That persistence is the whole point:

- a daemon SIGKILLed mid-sweep resumes from the completed chunks
  (:meth:`JobStore.recover` keeps ``done`` chunk rows);
- ``GET /v1/workloads/{id}`` reports live ``{done, total, eta}``
  progress from the chunk table;
- the cluster coordinator fans pending chunk indices across shards and
  merges their chunk results through the *same* merge function a
  single node uses.

The final merged report is **byte-identical** to a fresh local run of
the underlying evaluation function, because the chunk decomposition
mirrors the local iteration order and the merge goes through the same
canonical report helpers (``sweep_report``/``evaluation_report``/
``honeypot_report``) — asserted in ``tests/test_workloads.py``.

Workload parameters carry the *generator specs* of their input corpora
(seeds and sizes), never the corpora themselves, so every chunk can
regenerate its inputs deterministically on whatever node runs it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Optional

from repro.api.envelope import canonical_json

#: the workload-engine HTTP routes — kept in lockstep with
#: ``docs/service.md`` by ``tools/check_api.py``; every front end
#: (worker, gateway, coordinator) serves all of them
ROUTES = (
    ("GET", "/v1/queries"),
    ("GET", "/v1/workloads"),
    ("GET", "/v1/workloads/{id}"),
    ("POST", "/v1/jobs/{id}/cancel"),
    ("POST", "/v1/queries"),
    ("POST", "/v1/workloads"),
    ("POST", "/v1/workloads/{id}/resume"),
)


class WorkloadError(ValueError):
    """A workload request failed validation (mapped to HTTP 400)."""


# ---------------------------------------------------------------------------
# parameter validation helpers
# ---------------------------------------------------------------------------

def _require_mapping(value, what: str) -> dict:
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise WorkloadError(f"{what!r} must be an object")
    return dict(value)


def _reject_unknown(params: dict, allowed: tuple, what: str) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise WorkloadError(
            f"unknown {what} parameter(s): {', '.join(unknown)}; "
            f"allowed: {', '.join(allowed)}")


def _opt_int(params: dict, key: str, default: int, minimum: int = 0) -> int:
    value = params.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise WorkloadError(f"{key!r} must be an integer >= {minimum}")
    return value


def _opt_number(params: dict, key: str, default: float,
                minimum: float = 0.0) -> float:
    value = params.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or value < minimum:
        raise WorkloadError(f"{key!r} must be a number >= {minimum}")
    return float(value)


def _opt_bool(params: dict, key: str, default: bool) -> bool:
    value = params.get(key, default)
    if not isinstance(value, bool):
        raise WorkloadError(f"{key!r} must be a boolean")
    return value


def _number_list(params: dict, key: str, default: tuple) -> list:
    values = params.get(key, list(default))
    if not isinstance(values, (list, tuple)) or not values or any(
            isinstance(v, bool) or not isinstance(v, (int, float))
            for v in values):
        raise WorkloadError(f"{key!r} must be a non-empty list of numbers")
    return [v if isinstance(v, int) else float(v) for v in values]


def _count_mapping(params: dict, key: str) -> Optional[dict]:
    counts = params.get(key)
    if counts is None:
        return None
    if not isinstance(counts, dict) or not counts or any(
            not isinstance(name, str) or isinstance(count, bool)
            or not isinstance(count, int) or count < 0
            for name, count in counts.items()):
        raise WorkloadError(
            f"{key!r} must map names to non-negative integer counts")
    return dict(counts)


def _corpus_spec(params: dict, key: str, allowed: tuple,
                 defaults: dict) -> dict:
    spec = _require_mapping(params.get(key), key)
    _reject_unknown(spec, allowed, key)
    normalized = {}
    for name, default in defaults.items():
        if isinstance(default, bool):
            normalized[name] = _opt_bool(spec, name, default)
        elif isinstance(default, int):
            normalized[name] = _opt_int(spec, name, default, minimum=0)
        else:
            normalized[name] = _count_mapping(spec, name)
    return normalized


# ---------------------------------------------------------------------------
# execution context
# ---------------------------------------------------------------------------

@dataclass
class WorkloadContext:
    """Per-run execution context handed to every chunk.

    Carries the resident :class:`~repro.api.AnalysisSession` (so CCC
    chunks share its parse-once artifact store) and a corpus memo, so a
    job touching the same generated corpus in every chunk builds it
    once per run instead of once per chunk.  Regenerating after a crash
    is fine — generation is deterministic in the stored seed.
    """

    session: object = None
    cache: dict = field(default_factory=dict)

    @property
    def store(self):
        """The session's artifact store, when a session is attached."""
        return getattr(self.session, "store", None)

    def corpus(self, kind: str, spec: dict, build: Callable):
        """Memoized deterministic corpus generation for one spec."""
        key = (kind, json.dumps(spec, sort_keys=True))
        if key not in self.cache:
            self.cache[key] = build()
        return self.cache[key]


def _check_honeypot_counts(spec: dict) -> dict:
    """Reject honeypot family names the generator does not know."""
    if spec["counts"] is not None:
        from repro.datasets.honeypots import HONEYPOT_TYPES

        unknown = sorted(set(spec["counts"]) - set(HONEYPOT_TYPES))
        if unknown:
            raise WorkloadError(
                f"unknown honeypot type(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(HONEYPOT_TYPES))}")
    return spec


def _honeypot_contracts(context: WorkloadContext, spec: dict) -> list:
    from repro.datasets.honeypots import generate_honeypot_corpus

    return context.corpus("honeypot", spec, lambda: generate_honeypot_corpus(
        seed=spec["seed"], counts=spec["counts"]))


def _smartbugs_corpus(context: WorkloadContext, spec: dict):
    from repro.datasets.smartbugs import generate_smartbugs_corpus

    return context.corpus("smartbugs", spec, lambda: generate_smartbugs_corpus(
        seed=spec["seed"],
        include_unknown_unknowns=spec["include_unknown_unknowns"]))


# ---------------------------------------------------------------------------
# the workload protocol and registry
# ---------------------------------------------------------------------------

class Workload:
    """One servable evaluation scenario (see the module docstring).

    Subclasses define a stable ``kind`` id plus four pure hooks:
    ``normalize`` (validate + default-fill the wire params — the stored
    params are always normalized), ``decompose`` (params → ordered
    chunk spec list; deterministic, runs on coordinators too),
    ``run_chunk`` (one chunk spec → one JSON-able result), and
    ``merge`` (all chunk results, in chunk order → the final report).
    """

    kind: str = ""
    title: str = ""

    def normalize(self, params: dict) -> dict:
        """Validate wire parameters and fill every default."""
        raise NotImplementedError

    def decompose(self, params: dict) -> list:
        """The ordered chunk specs of one normalized parameter set."""
        raise NotImplementedError

    def run_chunk(self, params: dict, spec: dict,
                  context: WorkloadContext) -> dict:
        """Execute one chunk; returns its JSON-able result."""
        raise NotImplementedError

    def merge(self, params: dict, results: list) -> dict:
        """Merge the chunk results (in chunk order) into the final report."""
        raise NotImplementedError


class WorkloadRegistry:
    """The registry of servable workload kinds (mirrors ``AnalyzerRegistry``)."""

    def __init__(self):
        self._workloads: dict = {}

    def register(self, workload: Workload) -> Workload:
        """Register one workload instance under its ``kind`` id."""
        if not workload.kind:
            raise ValueError("workload must define a non-empty kind")
        self._workloads[workload.kind] = workload
        return workload

    def get(self, kind: str) -> Workload:
        """The workload registered under ``kind`` (:class:`WorkloadError` if none)."""
        try:
            return self._workloads[kind]
        except KeyError:
            raise WorkloadError(
                f"unknown workload kind {kind!r}; registered: "
                f"{', '.join(self.kinds())}") from None

    def kinds(self) -> list:
        """Every registered kind id, sorted."""
        return sorted(self._workloads)

    def __contains__(self, kind: str) -> bool:
        return kind in self._workloads


#: the process-wide registry the service consults
WORKLOADS = WorkloadRegistry()


def register_workload(workload_class):
    """Class decorator registering a workload in :data:`WORKLOADS`."""
    WORKLOADS.register(workload_class())
    return workload_class


# ---------------------------------------------------------------------------
# the built-in workloads
# ---------------------------------------------------------------------------

@register_workload
class ParameterSweepWorkload(Workload):
    """The Table 9 / Figure 9 N/η/ε sweep — one chunk per grid cell."""

    kind = "parameter_sweep"
    title = "CCD parameter sweep over N-gram size, eta, and epsilon"

    def normalize(self, params: dict) -> dict:
        """Validate wire parameters and fill every default."""
        from repro.evaluation.parameter_sweep import (
            DEFAULT_NGRAM_SIZES,
            DEFAULT_NGRAM_THRESHOLDS,
            DEFAULT_SIMILARITY_THRESHOLDS,
        )

        params = _require_mapping(params, "params")
        _reject_unknown(params, ("honeypot", "ngram_sizes", "ngram_thresholds",
                                 "similarity_thresholds"), self.kind)
        return {
            "honeypot": _check_honeypot_counts(
                _corpus_spec(params, "honeypot", ("seed", "counts"),
                             {"seed": 7, "counts": None})),
            "ngram_sizes": _number_list(params, "ngram_sizes",
                                        DEFAULT_NGRAM_SIZES),
            "ngram_thresholds": _number_list(params, "ngram_thresholds",
                                             DEFAULT_NGRAM_THRESHOLDS),
            "similarity_thresholds": _number_list(
                params, "similarity_thresholds",
                DEFAULT_SIMILARITY_THRESHOLDS),
        }

    def decompose(self, params: dict) -> list:
        """The ordered chunk specs for one normalized parameter set."""
        from repro.evaluation.parameter_sweep import sweep_grid

        return [{"cell": cell} for cell in sweep_grid(
            params["ngram_sizes"], params["ngram_thresholds"],
            params["similarity_thresholds"])]

    def run_chunk(self, params: dict, spec: dict,
                  context: WorkloadContext) -> dict:
        """Execute one chunk spec against the shared context."""
        from repro.evaluation.parameter_sweep import evaluate_sweep_cell

        contracts = _honeypot_contracts(context, params["honeypot"])
        return asdict(evaluate_sweep_cell(contracts, **spec["cell"]))

    def merge(self, params: dict, results: list) -> dict:
        """Merge the chunk results into the final report."""
        from repro.evaluation.parameter_sweep import SweepPoint, sweep_report

        return sweep_report([SweepPoint(**result) for result in results])


@register_workload
class SmartBugsCccWorkload(Workload):
    """CCC on the labelled corpus (Tables 1/2) — one chunk per category."""

    kind = "smartbugs_ccc"
    title = "CCC evaluation on the labelled smartbugs-style corpus"

    def normalize(self, params: dict) -> dict:
        """Validate wire parameters and fill every default."""
        params = _require_mapping(params, "params")
        _reject_unknown(params, ("smartbugs", "dataset", "timeout_per_file"),
                        self.kind)
        dataset = params.get("dataset", "original")
        if dataset not in ("original", "functions", "statements"):
            raise WorkloadError(
                "'dataset' must be original|functions|statements")
        return {
            "smartbugs": _corpus_spec(
                params, "smartbugs", ("seed", "include_unknown_unknowns"),
                {"seed": 13, "include_unknown_unknowns": False}),
            "dataset": dataset,
            "timeout_per_file": _opt_number(params, "timeout_per_file", 20.0),
        }

    def _categories(self, context: WorkloadContext, params: dict) -> list:
        corpus = _smartbugs_corpus(context, params["smartbugs"])
        return sorted({entry.category.value for entry in corpus.entries})

    def decompose(self, params: dict) -> list:
        """The ordered chunk specs for one normalized parameter set."""
        return [{"category": category}
                for category in self._categories(WorkloadContext(), params)]

    def run_chunk(self, params: dict, spec: dict,
                  context: WorkloadContext) -> dict:
        """Execute one chunk spec against the shared context."""
        from repro.ccc.checker import ContractChecker
        from repro.ccc.dasp import DaspCategory
        from repro.datasets.smartbugs import SmartBugsCorpus
        from repro.evaluation.smartbugs_eval import (
            evaluate_ccc_on_corpus,
            evaluation_report,
        )

        corpus = _smartbugs_corpus(context, params["smartbugs"])
        category = DaspCategory(spec["category"])
        subcorpus = SmartBugsCorpus(entries=corpus.by_category(category))
        checker = ContractChecker(timeout=params["timeout_per_file"],
                                  store=context.store)
        evaluation = evaluate_ccc_on_corpus(
            subcorpus, dataset=params["dataset"], checker=checker)
        return evaluation_report(evaluation)

    def merge(self, params: dict, results: list) -> dict:
        """Merge the chunk results into the final report."""
        from repro.ccc.dasp import DaspCategory
        from repro.evaluation.smartbugs_eval import (
            CategoryResult,
            ToolEvaluation,
            evaluation_report,
        )

        evaluation = ToolEvaluation(tool="CCC", dataset=params["dataset"])
        for report in results:
            for row in report["rows"]:
                category = DaspCategory(row["category"])
                evaluation.categories[category] = CategoryResult(
                    category=category, labels=row["labels"],
                    true_positives=row["tp"], false_positives=row["fp"])
        return evaluation_report(evaluation)


@register_workload
class SmartBugsBaselinesWorkload(Workload):
    """The lexical baseline on every dataset variant — one chunk per dataset."""

    kind = "smartbugs_baselines"
    title = "SmartCheck-style baseline over the corpus dataset variants"

    def normalize(self, params: dict) -> dict:
        """Validate wire parameters and fill every default."""
        params = _require_mapping(params, "params")
        _reject_unknown(params, ("smartbugs", "datasets"), self.kind)
        datasets = params.get("datasets",
                              ["original", "functions", "statements"])
        if not isinstance(datasets, (list, tuple)) or not datasets or any(
                dataset not in ("original", "functions", "statements")
                for dataset in datasets):
            raise WorkloadError(
                "'datasets' must be a non-empty list drawn from "
                "original|functions|statements")
        return {
            "smartbugs": _corpus_spec(
                params, "smartbugs", ("seed", "include_unknown_unknowns"),
                {"seed": 13, "include_unknown_unknowns": False}),
            "datasets": list(datasets),
        }

    def decompose(self, params: dict) -> list:
        """The ordered chunk specs for one normalized parameter set."""
        return [{"dataset": dataset} for dataset in params["datasets"]]

    def run_chunk(self, params: dict, spec: dict,
                  context: WorkloadContext) -> dict:
        """Execute one chunk spec against the shared context."""
        from repro.evaluation.smartbugs_eval import (
            evaluate_baseline_on_corpus,
            evaluation_report,
        )

        corpus = _smartbugs_corpus(context, params["smartbugs"])
        evaluation = evaluate_baseline_on_corpus(corpus,
                                                 dataset=spec["dataset"])
        return evaluation_report(evaluation)

    def merge(self, params: dict, results: list) -> dict:
        """Merge the chunk results into the final report."""
        return {"reports": results}


@register_workload
class HoneypotClonesWorkload(Workload):
    """Table 3 clone detection on the honeypot corpus — one chunk per tool."""

    kind = "honeypot_clones"
    title = "CCD vs. the clone baselines on the honeypot corpus"

    #: tool ids in canonical chunk order
    TOOLS = ("ccd", "smartembed", "exact_hash")

    def normalize(self, params: dict) -> dict:
        """Validate wire parameters and fill every default."""
        params = _require_mapping(params, "params")
        _reject_unknown(params, ("honeypot", "tools", "ngram_size",
                                 "ngram_threshold", "similarity_threshold",
                                 "smartembed_threshold"), self.kind)
        tools = params.get("tools", list(self.TOOLS))
        if not isinstance(tools, (list, tuple)) or not tools or any(
                tool not in self.TOOLS for tool in tools):
            raise WorkloadError(
                f"'tools' must be a non-empty list drawn from "
                f"{'|'.join(self.TOOLS)}")
        return {
            "honeypot": _check_honeypot_counts(
                _corpus_spec(params, "honeypot", ("seed", "counts"),
                             {"seed": 7, "counts": None})),
            "tools": list(tools),
            "ngram_size": _opt_int(params, "ngram_size", 3, minimum=1),
            "ngram_threshold": _opt_number(params, "ngram_threshold", 0.5),
            "similarity_threshold": _opt_number(
                params, "similarity_threshold", 0.7),
            "smartembed_threshold": _opt_number(
                params, "smartembed_threshold", 0.9),
        }

    def decompose(self, params: dict) -> list:
        """The ordered chunk specs for one normalized parameter set."""
        return [{"tool": tool} for tool in params["tools"]]

    def run_chunk(self, params: dict, spec: dict,
                  context: WorkloadContext) -> dict:
        """Execute one chunk spec against the shared context."""
        from repro.evaluation.honeypot_eval import (
            evaluate_ccd_on_honeypots,
            evaluate_exact_hash_on_honeypots,
            evaluate_smartembed_on_honeypots,
            honeypot_report,
        )

        contracts = _honeypot_contracts(context, params["honeypot"])
        if spec["tool"] == "ccd":
            evaluation = evaluate_ccd_on_honeypots(
                contracts,
                ngram_size=params["ngram_size"],
                ngram_threshold=params["ngram_threshold"],
                similarity_threshold=params["similarity_threshold"])
        elif spec["tool"] == "smartembed":
            evaluation = evaluate_smartembed_on_honeypots(
                contracts,
                similarity_threshold=params["smartembed_threshold"])
        else:
            evaluation = evaluate_exact_hash_on_honeypots(contracts)
        return honeypot_report(evaluation)

    def merge(self, params: dict, results: list) -> dict:
        """Merge the chunk results into the final report."""
        return {"reports": results}


@register_workload
class ManualValidationWorkload(Workload):
    """The Table 8 simulated manual review — one chunk (full study)."""

    kind = "manual_validation"
    title = "simulated manual validation of flagged snippet/contract pairs"

    def normalize(self, params: dict) -> dict:
        """Validate wire parameters and fill every default."""
        params = _require_mapping(params, "params")
        _reject_unknown(params, ("qa", "sanctuary", "sample_size",
                                 "review_seed", "validation_timeout_seconds",
                                 "snippet_analysis_timeout_seconds"),
                        self.kind)
        return {
            "qa": _corpus_spec(params, "qa", ("seed", "posts_per_site"),
                               {"seed": 3, "posts_per_site": None}),
            "sanctuary": _corpus_spec(
                params, "sanctuary", ("seed", "independent_contracts"),
                {"seed": 11, "independent_contracts": 150}),
            "sample_size": _opt_int(params, "sample_size", 100, minimum=1),
            "review_seed": _opt_int(params, "review_seed", 99),
            "validation_timeout_seconds": _opt_number(
                params, "validation_timeout_seconds", 15.0),
            "snippet_analysis_timeout_seconds": _opt_number(
                params, "snippet_analysis_timeout_seconds", 15.0),
        }

    def decompose(self, params: dict) -> list:
        """The ordered chunk specs for one normalized parameter set."""
        return [{"stage": "study"}]

    def run_chunk(self, params: dict, spec: dict,
                  context: WorkloadContext) -> dict:
        """Execute one chunk spec against the shared context."""
        from repro.datasets.sanctuary import generate_sanctuary
        from repro.datasets.snippets import generate_qa_corpus
        from repro.evaluation.manual_validation import (
            simulate_manual_validation,
        )
        from repro.pipeline import StudyConfiguration, VulnerableCodeReuseStudy

        qa_spec, sanctuary_spec = params["qa"], params["sanctuary"]
        qa = generate_qa_corpus(seed=qa_spec["seed"],
                                posts_per_site=qa_spec["posts_per_site"])
        sanctuary = generate_sanctuary(
            qa, seed=sanctuary_spec["seed"],
            independent_contracts=sanctuary_spec["independent_contracts"])
        study = VulnerableCodeReuseStudy(StudyConfiguration(
            validation_timeout_seconds=params["validation_timeout_seconds"],
            snippet_analysis_timeout_seconds=params[
                "snippet_analysis_timeout_seconds"]))
        result = study.run(qa, sanctuary.contracts)
        table = simulate_manual_validation(
            result, result.collection.snippets, sanctuary.contracts,
            sanctuary.ground_truth_embeddings,
            sample_size=params["sample_size"], seed=params["review_seed"])
        return {
            "sample_size": table.sample_size,
            "confirmed_pairings": table.confirmed_pairings,
            "counts": table.counts(),
        }

    def merge(self, params: dict, results: list) -> dict:
        """Merge the chunk results into the final report."""
        return results[0]


# ---------------------------------------------------------------------------
# wire validation and payloads
# ---------------------------------------------------------------------------

def validate_workload_request(body: dict,
                              registry: Optional[WorkloadRegistry] = None) -> dict:
    """Validate one ``POST /v1/workloads`` body into a stored descriptor.

    Returns ``{"kind", "params"}`` (params normalized and
    default-filled), plus ``"chunks"`` when the request restricts
    execution to a chunk subset — the coordinator uses that to fan one
    workload's cells across shards.  Raises :class:`WorkloadError` on
    any invalid field.
    """
    registry = registry if registry is not None else WORKLOADS
    if not isinstance(body, dict):
        raise WorkloadError("request body must be a JSON object")
    kind = body.get("kind")
    if not isinstance(kind, str):
        raise WorkloadError("'kind' must be a workload kind string")
    workload = registry.get(kind)
    params = workload.normalize(body.get("params") or {})
    descriptor = {"kind": kind, "params": params}
    chunks = body.get("chunks")
    if chunks is not None:
        total = len(workload.decompose(params))
        if not isinstance(chunks, (list, tuple)) or not chunks or any(
                isinstance(chunk, bool) or not isinstance(chunk, int)
                or chunk < 0 or chunk >= total
                for chunk in chunks):
            raise WorkloadError(
                f"'chunks' must be a non-empty list of chunk indices in "
                f"[0, {total})")
        descriptor["chunks"] = sorted(set(chunks))
    return descriptor


def workload_payload(jobstore, job, include_chunks: bool = False) -> dict:
    """The ``GET /v1/workloads/{id}`` body: job status plus chunk progress.

    ``include_chunks`` adds the raw chunk rows (spec and result as the
    stored canonical-JSON strings) — the coordinator polls with
    ``?chunks=1`` and copies finished rows into its own chunk table.
    """
    payload = job.as_dict()
    payload["progress"] = jobstore.chunk_progress(job.job_id)
    if include_chunks:
        payload["chunks"] = jobstore.chunks(job.job_id)
    return payload


def workloads_listing_payload(jobstore, query: dict) -> dict:
    """The ``GET /v1/workloads`` body for one parsed query string."""
    from repro.service.jobstore import JOB_STATES

    state = query.get("state", [None])[0]
    if state is not None and state not in JOB_STATES:
        raise WorkloadError(f"'state' must be one of {'|'.join(JOB_STATES)}")

    def query_int(name: str, default: int) -> int:
        raw = query.get(name, [str(default)])[0]
        try:
            return int(raw)
        except ValueError:
            raise WorkloadError(f"'{name}' must be an integer") from None

    limit = query_int("limit", 100)
    offset = query_int("offset", 0)
    jobs = jobstore.list_jobs(state=state, limit=limit, offset=offset,
                              workload_only=True)
    return {
        "workloads": [workload_payload(jobstore, job) for job in jobs],
        "total": jobstore.count_jobs(state=state, workload_only=True),
        "limit": limit,
        "offset": offset,
    }


# ---------------------------------------------------------------------------
# the chunk runner (called by the scheduler)
# ---------------------------------------------------------------------------

def run_workload_job(job, jobstore, session=None,
                     should_stop: Optional[Callable[[], bool]] = None,
                     registry: Optional[WorkloadRegistry] = None) -> str:
    """Drain one workload job chunk by chunk; returns the outcome.

    ``"done"`` — every (selected) chunk completed and, for unrestricted
    jobs, the merged report was appended as the job's single result
    envelope.  ``"cancelled"`` — a cancel request was honoured at a
    chunk boundary (remaining chunks marked ``cancelled``).
    ``"paused"`` — ``should_stop`` asked for a graceful shutdown; the
    job is left ``running`` so :meth:`JobStore.recover` requeues it on
    the next start and completed chunks are reused.

    Chunk specs are inserted with ``INSERT OR IGNORE``, so a resumed
    job keeps its completed rows and this function simply skips them —
    that is the entire resume protocol.
    """
    registry = registry if registry is not None else WORKLOADS
    descriptor = job.workload or {}
    workload = registry.get(descriptor.get("kind"))
    params = descriptor.get("params") or {}
    restrict = descriptor.get("chunks")
    specs = workload.decompose(params)
    jobstore.add_chunks(job.job_id, (canonical_json(spec) for spec in specs))
    context = WorkloadContext(session=session)
    for chunk, spec_json in jobstore.pending_chunks(job.job_id):
        if restrict is not None and chunk not in restrict:
            continue
        if should_stop is not None and should_stop():
            return "paused"
        if jobstore.is_cancel_requested(job.job_id):
            jobstore.cancel_pending_chunks(job.job_id)
            return "cancelled"
        jobstore.start_chunk(job.job_id, chunk)
        result = workload.run_chunk(params, json.loads(spec_json), context)
        jobstore.finish_chunk(job.job_id, chunk, canonical_json(result))
    if restrict is not None:
        # a shard executing a chunk subset never merges: the coordinator
        # collects the chunk rows and merges across every shard's subset
        return "done"
    rows = jobstore.chunks(job.job_id)
    results = [json.loads(row["result"]) for row in rows]
    report = workload.merge(params, results)
    jobstore.append_result(job.job_id, 0, canonical_json(report))
    return "done"


__all__ = [
    "ROUTES",
    "WORKLOADS",
    "Workload",
    "WorkloadContext",
    "WorkloadError",
    "WorkloadRegistry",
    "register_workload",
    "run_workload_job",
    "validate_workload_request",
    "workload_payload",
    "workloads_listing_payload",
]
