"""Fingerprint generation: normalized tokens -> fuzzy-hash fingerprints.

A fingerprint is a sequence of base-64 characters where function
fingerprints are separated by ``.`` and contract fingerprints by ``:``
(Section 5.4).  The separators let the matcher compare functions
independently of their order in the file (Section 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ccd.fuzzyhash import FuzzyHasher
from repro.ccd.normalizer import NormalizedUnit, Normalizer


@dataclass
class Fingerprint:
    """A structured fingerprint of one snippet or contract."""

    text: str = ""
    contracts: list[list[str]] = field(default_factory=list)

    @property
    def sub_fingerprints(self) -> list[str]:
        """All function-level fingerprints, across contracts, in order."""
        return [sub for contract in self.contracts for sub in contract if sub]

    @property
    def is_empty(self) -> bool:
        return not any(self.sub_fingerprints)

    def __len__(self) -> int:
        return len(self.text)

    @classmethod
    def parse(cls, text: str) -> "Fingerprint":
        """Reconstruct the structured form from the textual representation."""
        contracts = []
        for contract_text in text.split(":"):
            contracts.append([sub for sub in contract_text.split(".")])
        return cls(text=text, contracts=contracts)


class FingerprintGenerator:
    """Generate fingerprints from Solidity source code."""

    def __init__(self, block_size: int = 2, window: int = 4, normalizer: Normalizer | None = None):
        self.hasher = FuzzyHasher(block_size=block_size, window=window)
        self.normalizer = normalizer if normalizer is not None else Normalizer()

    def from_source(self, source: str) -> Fingerprint:
        """Normalize, tokenize and fuzzy-hash ``source``.

        Raises :class:`~repro.solidity.errors.SolidityParseError` when the
        source cannot be parsed even with the tolerant grammar.
        """
        return self.from_normalized(self.normalizer.normalize(source))

    def from_normalized(self, unit: NormalizedUnit) -> Fingerprint:
        contracts: list[list[str]] = []
        for contract in unit.contracts:
            subs = []
            for function in contract.functions:
                if function.name == "header":
                    # the normalized contract header ("contract c") is common to
                    # every contract; including it in the matcher would inflate
                    # every similarity score, so it is left out of the fingerprint
                    continue
                digest = self.hasher.hash_tokens(function.tokens)
                if digest:
                    subs.append(digest)
            contracts.append(subs)
        text = ":".join(".".join(subs) for subs in contracts)
        return Fingerprint(text=text, contracts=contracts)
