"""The Contract Clone Detector (CCD) public API.

``CloneDetector`` indexes a corpus of Solidity sources (deployed contracts)
and finds clones of query snippets: parse → normalize → fingerprint →
N-gram pre-filter → order-independent similarity (Figure 4 of the paper).

The detector optionally plugs into the shared analysis core
(:mod:`repro.core`): when constructed with an
:class:`~repro.core.artifacts.ArtifactStore`, fingerprints and N-gram sets
are materialized through the store — each unique source is parsed at most
once across CCD, CCC, and the pipeline — and the batch entry points
(:meth:`CloneDetector.add_corpus`, :meth:`CloneDetector.find_clones_many`)
accept an :class:`~repro.core.executor.Executor` to fan the hot loop out
across threads or worker processes.
"""

from __future__ import annotations

import warnings
from collections import Counter
from functools import partial
from typing import Hashable, Iterable, Optional, Sequence, Union

from repro.ccd.fingerprint import Fingerprint, FingerprintGenerator
from repro.ccd.matcher import CloneMatch, MatchPipeline, MatchStats, SimilarityBackend
from repro.ccd.ngram_index import NGramIndex
from repro.ccd.score_memo import ScoreMemoTable
from repro.ccd.similarity import order_independent_similarity

# module-style import: repro.core.artifacts itself imports repro.ccd
# (fingerprint), so attribute access must be deferred to call time to keep
# either import order working
import repro.core.artifacts as core_artifacts
from repro.core.executor import Executor
from repro.solidity.errors import SolidityParseError


def _fingerprint_task(
    spec: "core_artifacts.ArtifactStoreSpec", source: str, strict: bool = True,
) -> Optional[Fingerprint]:
    """Fingerprint ``source`` in a worker process, rehydrating via the spec.

    ``strict=False`` swallows *any* error (the tolerance the clone-mapping
    query path has always had for pathological snippets); corpus indexing
    stays strict so unexpected failures surface.
    """
    store = core_artifacts.process_local_store(spec)
    try:
        return store.get(source).fingerprint
    except (SolidityParseError, RecursionError):
        return None
    except Exception:
        if strict:
            raise
        return None


class CloneDetector:
    """Detect Type I–III clones of code snippets in a contract corpus.

    Parameters mirror the paper's evaluation (Table 9 / Appendix C):

    * ``ngram_size`` — N-gram size :math:`N` (3, 5, or 7),
    * ``ngram_threshold`` — candidate pre-filter threshold :math:`\\eta`,
    * ``similarity_threshold`` — final clone decision threshold
      :math:`\\epsilon` in percent/100 (e.g. ``0.7``).

    The defaults are the best precision/recall combination reported by the
    paper (N=3, η=0.5, ε=0.7); the large-scale study uses the conservative
    ε=0.9 configuration (Section 6.3).

    ``store`` attaches a shared :class:`~repro.core.artifacts.ArtifactStore`;
    its CCD configuration (N-gram size, fuzzy-hash block size) must match
    the detector's, because cached fingerprints and N-gram sets are only
    valid for one configuration.

    ``similarity_backend`` selects the verification strategy of the
    staged :class:`~repro.ccd.matcher.MatchPipeline`: ``"bounded"``
    (default — pruned, byte-identical matches), ``"myers"`` (the same
    pruning with a bit-parallel distance kernel), or ``"exact"`` (the
    naive reference); a :class:`~repro.ccd.matcher.SimilarityBackend`
    instance is also accepted.

    ``score_memo`` attaches a corpus-global
    :class:`~repro.ccd.score_memo.ScoreMemoTable` (e.g. one with a
    persistent disk tier); by default the pipeline creates a fresh
    in-memory table.
    """

    def __init__(
        self,
        ngram_size: int = 3,
        ngram_threshold: float = 0.5,
        similarity_threshold: float = 0.7,
        fingerprint_block_size: int = 2,
        fingerprint_window: int = 4,
        store: Optional["core_artifacts.ArtifactStore"] = None,
        similarity_backend: Union[str, SimilarityBackend, None] = None,
        score_memo: Optional[ScoreMemoTable] = None,
    ):
        if store is not None:
            if store.ngram_size != ngram_size:
                raise ValueError(
                    f"store ngram_size {store.ngram_size} != detector ngram_size {ngram_size}")
            if store.generator.hasher.block_size != fingerprint_block_size:
                raise ValueError(
                    f"store fingerprint block size {store.generator.hasher.block_size} "
                    f"!= detector fingerprint_block_size {fingerprint_block_size}")
            if store.generator.hasher.window != fingerprint_window:
                raise ValueError(
                    f"store fingerprint window {store.generator.hasher.window} "
                    f"!= detector fingerprint_window {fingerprint_window}")
        self.ngram_size = ngram_size
        self.ngram_threshold = ngram_threshold
        self.similarity_threshold = similarity_threshold
        self.store = store
        self.generator = store.generator if store is not None \
            else FingerprintGenerator(block_size=fingerprint_block_size,
                                      window=fingerprint_window)
        self.index = NGramIndex(ngram_size=ngram_size)
        self.fingerprints: dict[Hashable, Fingerprint] = {}
        #: content key of each indexed document's source (when known) —
        #: the service's no-op re-ingest guard and the saved-index
        #: source-identity record
        self.source_keys: dict[Hashable, str] = {}
        self.parse_failures: list[Hashable] = []
        self.matcher = MatchPipeline(
            self.index, self.fingerprints, backend=similarity_backend,
            score_memo=score_memo)

    @property
    def similarity_backend(self) -> str:
        """The name of the configured verification backend."""
        return self.matcher.backend.name

    @property
    def score_memo(self) -> ScoreMemoTable:
        """The corpus-global (sub₁, sub₂) score memo of the pipeline."""
        return self.matcher.score_memo

    @property
    def match_stats(self) -> MatchStats:
        """Accumulated per-stage matcher statistics across all queries."""
        return self.matcher.stats

    # -- corpus management ------------------------------------------------------
    def add_document(self, document_id: Hashable, source: str) -> bool:
        """Fingerprint and index one document; returns ``False`` when unparsable.

        Re-adding a known document with byte-identical source is a no-op
        (``True`` without a fingerprint lookup, index write, or score-memo
        transition) — the guard behind the service's no-op re-ingest path.
        """
        source_key = core_artifacts.content_key(source)
        if self.source_keys.get(document_id) == source_key \
                and document_id in self.fingerprints:
            return True
        fingerprint, grams = self._try_fingerprint_with_grams(source)
        if fingerprint is None:
            self.parse_failures.append(document_id)
            return False
        return self.add_fingerprint(
            document_id, fingerprint, grams=grams, source_key=source_key)

    def add_fingerprint(
        self,
        document_id: Hashable,
        fingerprint: Fingerprint,
        grams: Optional[frozenset] = None,
        source_key: Optional[str] = None,
    ) -> bool:
        """Index one precomputed fingerprint (and optional cached N-gram set)."""
        if fingerprint.is_empty:
            self.parse_failures.append(document_id)
            return False
        previous = self.fingerprints.get(document_id)
        self.fingerprints[document_id] = fingerprint
        # register before releasing the replaced fingerprint: subs shared
        # between the two (the common case on re-ingest) never transit
        # through refcount zero, so their memoized scores survive the swap
        self.score_memo.register(fingerprint.sub_fingerprints)
        if previous is not None:
            self.score_memo.release(previous.sub_fingerprints)
            self._account_replacement(previous, fingerprint)
        if source_key is not None:
            self.source_keys[document_id] = source_key
        else:
            self.source_keys.pop(document_id, None)
        if grams is not None:
            self.index.add_grams(document_id, grams)
        else:
            self.index.add(document_id, fingerprint.text)
        return True

    def _account_replacement(
        self, previous: Fingerprint, fingerprint: Fingerprint,
    ) -> None:
        """Count function-level reuse across a document replacement.

        A sub-fingerprint is one function's digest, so the multiset
        overlap between the old and new fingerprints is exactly the
        functions an edit left untouched.
        """
        remaining = Counter(previous.sub_fingerprints)
        reused = 0
        for sub in fingerprint.sub_fingerprints:
            if remaining[sub] > 0:
                remaining[sub] -= 1
                reused += 1
        stats = self.matcher.stats
        stats.functions_reused += reused
        stats.functions_reanalyzed += len(fingerprint.sub_fingerprints) - reused

    def remove_fingerprint(self, document_id: Hashable) -> Optional[Fingerprint]:
        """Retire one indexed document; returns its fingerprint (or ``None``).

        Removes the document from the N-gram index and the fingerprint
        map and releases its sub-fingerprints from the score memo —
        memoized pair scores that only existed because of this document
        are dropped (from the disk tier too, when one is attached).
        """
        fingerprint = self.fingerprints.pop(document_id, None)
        self.source_keys.pop(document_id, None)
        if fingerprint is None:
            return None
        self.index.remove(document_id)
        self.matcher.forget(document_id)
        self.score_memo.release(fingerprint.sub_fingerprints)
        return fingerprint

    def add_corpus(
        self,
        documents: Iterable[tuple[Hashable, str]],
        executor: Optional[Executor] = None,
    ) -> int:
        """Index many documents; returns the number successfully indexed.

        With an ``executor``, fingerprinting — the expensive part — fans
        out across workers; index insertion stays serial (and therefore
        deterministic).  The process backend rehydrates fingerprints from
        source inside each worker.
        """
        documents = list(documents)
        if executor is None:
            results = [self._try_fingerprint_with_grams(source) for _, source in documents]
        elif executor.supports_shared_state:
            results = executor.map_batches(
                self._try_fingerprint_with_grams, [source for _, source in documents])
        else:
            task = partial(_fingerprint_task, self._store_spec())
            results = [(fingerprint, None) for fingerprint in executor.map_batches(
                task, [source for _, source in documents])]
        added = 0
        for (document_id, source), (fingerprint, grams) in zip(documents, results):
            if fingerprint is None:
                self.parse_failures.append(document_id)
            elif self.add_fingerprint(
                    document_id, fingerprint, grams=grams,
                    source_key=core_artifacts.content_key(source)):
                added += 1
        return added

    def __len__(self) -> int:
        return len(self.fingerprints)

    # -- matching ---------------------------------------------------------------
    def fingerprint_source(self, source: str) -> Fingerprint:
        """Fingerprint a query snippet without indexing it."""
        if self.store is not None:
            return self.store.get(source).fingerprint
        return self.generator.from_source(source)

    def find_clones(
        self,
        source: Optional[str] = None,
        *,
        fingerprint: Optional[Fingerprint] = None,
        similarity_threshold: Optional[float] = None,
        ngram_threshold: Optional[float] = None,
    ) -> list[CloneMatch]:
        """Find indexed documents that contain a clone of the query.

        Either ``source`` or a precomputed ``fingerprint`` must be given.
        Results are sorted by decreasing similarity.
        """
        if fingerprint is None:
            if source is None:
                raise ValueError("either source or fingerprint is required")
            fingerprint = self.fingerprint_source(source)
        epsilon = (self.similarity_threshold if similarity_threshold is None else similarity_threshold) * 100.0
        eta = self.ngram_threshold if ngram_threshold is None else ngram_threshold
        return self.matcher.match(fingerprint, eta, epsilon)

    def find_clones_many(
        self,
        queries: Sequence[tuple[Hashable, str]],
        *,
        executor: Optional[Executor] = None,
        similarity_threshold: Optional[float] = None,
        ngram_threshold: Optional[float] = None,
    ) -> list[tuple[Hashable, Optional[list[CloneMatch]]]]:
        """Match many ``(query_id, source)`` pairs against the index.

        .. deprecated::
            Use :meth:`repro.api.AnalysisSession.run` with
            ``analyses=["ccd"]`` and ``options={"ccd": {"detector":
            detector}}`` instead; this shim delegates to a session and
            unwraps the envelopes back to the legacy ``(query_id,
            matches)`` shape (``matches`` is ``None`` when the query
            source is unparsable).
        """
        warnings.warn(
            "CloneDetector.find_clones_many is deprecated; run the 'ccd' "
            "analyzer through repro.api.AnalysisSession instead",
            DeprecationWarning, stacklevel=2)
        from repro.api import AnalysisSession

        queries = list(queries)
        session = AnalysisSession(store=self.store, executor=executor)
        try:
            envelopes = session.run(queries, analyses=["ccd"], options={"ccd": {
                "detector": self,
                "similarity_threshold": similarity_threshold,
                "ngram_threshold": ngram_threshold,
            }})
        finally:
            session.close()
        return [(query_id, envelope.payload)
                for (query_id, _), envelope in zip(queries, envelopes)]

    # -- persistence ------------------------------------------------------------
    def save_index(self, directory, shards: int = 1) -> dict:
        """Persist the indexed corpus so it can be reloaded without re-parsing.

        Shards the per-document fingerprints and N-gram sets by hash
        prefix into ``directory`` (see :mod:`repro.ccd.index_io`); returns
        the written manifest.
        """
        from repro.ccd.index_io import save_index

        return save_index(self, directory, shards=shards)

    @classmethod
    def load(cls, directory, store=None, strict: bool = True) -> "CloneDetector":
        """Rebuild a detector from a saved index — zero parses.

        The detector configuration (N-gram size, thresholds, fuzzy-hash
        parameters) comes from the index manifest; ``store`` optionally
        attaches a shared artifact store with a matching configuration.
        """
        from repro.ccd.index_io import load_index

        return load_index(directory, store=store, strict=strict)

    def similarity(self, first_id: Hashable, second_id: Hashable) -> float:
        """Order-independent similarity between two indexed documents."""
        return order_independent_similarity(self.fingerprints[first_id], self.fingerprints[second_id])

    def pairwise_clones(
        self,
        similarity_threshold: Optional[float] = None,
        ngram_threshold: Optional[float] = None,
    ) -> dict[Hashable, list[CloneMatch]]:
        """For every indexed document, the other documents it is a clone of.

        This reproduces the honeypot evaluation protocol of Section 5.7.1
        where each contract is compared against all other contracts.
        """
        result: dict[Hashable, list[CloneMatch]] = {}
        for document_id, fingerprint in self.fingerprints.items():
            matches = self.find_clones(
                fingerprint=fingerprint,
                similarity_threshold=similarity_threshold,
                ngram_threshold=ngram_threshold,
            )
            result[document_id] = [match for match in matches if match.document_id != document_id]
        return result

    # -- helpers ----------------------------------------------------------------
    def _try_fingerprint_with_grams(
        self, source: str,
    ) -> tuple[Optional[Fingerprint], Optional[frozenset]]:
        """Fingerprint for indexing, plus the cached N-gram set when available."""
        if self.store is not None:
            artifact = self.store.get(source)
            try:
                return artifact.fingerprint, artifact.ngrams
            except (SolidityParseError, RecursionError):
                return None, None
        try:
            return self.generator.from_source(source), None
        except (SolidityParseError, RecursionError):
            return None, None

    def _store_spec(self) -> "core_artifacts.ArtifactStoreSpec":
        """The store recipe shipped to process-backend workers."""
        if self.store is not None:
            return self.store.spec
        return core_artifacts.ArtifactStoreSpec(
            ngram_size=self.ngram_size,
            fingerprint_block_size=self.generator.hasher.block_size,
            fingerprint_window=self.generator.hasher.window,
        )
