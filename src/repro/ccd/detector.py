"""The Contract Clone Detector (CCD) public API.

``CloneDetector`` indexes a corpus of Solidity sources (deployed contracts)
and finds clones of query snippets: parse → normalize → fingerprint →
N-gram pre-filter → order-independent similarity (Figure 4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

from repro.ccd.fingerprint import Fingerprint, FingerprintGenerator
from repro.ccd.ngram_index import NGramIndex
from repro.ccd.similarity import order_independent_similarity
from repro.solidity.errors import SolidityParseError


@dataclass(frozen=True)
class CloneMatch:
    """A detected clone relation between a query and an indexed document."""

    document_id: Hashable
    similarity: float

    def __repr__(self):
        return f"CloneMatch({self.document_id!r}, {self.similarity:.1f})"


class CloneDetector:
    """Detect Type I–III clones of code snippets in a contract corpus.

    Parameters mirror the paper's evaluation (Table 9 / Appendix C):

    * ``ngram_size`` — N-gram size :math:`N` (3, 5, or 7),
    * ``ngram_threshold`` — candidate pre-filter threshold :math:`\\eta`,
    * ``similarity_threshold`` — final clone decision threshold
      :math:`\\epsilon` in percent/100 (e.g. ``0.7``).

    The defaults are the best precision/recall combination reported by the
    paper (N=3, η=0.5, ε=0.7); the large-scale study uses the conservative
    ε=0.9 configuration (Section 6.3).
    """

    def __init__(
        self,
        ngram_size: int = 3,
        ngram_threshold: float = 0.5,
        similarity_threshold: float = 0.7,
        fingerprint_block_size: int = 2,
    ):
        self.ngram_size = ngram_size
        self.ngram_threshold = ngram_threshold
        self.similarity_threshold = similarity_threshold
        self.generator = FingerprintGenerator(block_size=fingerprint_block_size)
        self.index = NGramIndex(ngram_size=ngram_size)
        self.fingerprints: dict[Hashable, Fingerprint] = {}
        self.parse_failures: list[Hashable] = []

    # -- corpus management ------------------------------------------------------
    def add_document(self, document_id: Hashable, source: str) -> bool:
        """Fingerprint and index one document; returns ``False`` when unparsable."""
        try:
            fingerprint = self.generator.from_source(source)
        except (SolidityParseError, RecursionError):
            self.parse_failures.append(document_id)
            return False
        return self.add_fingerprint(document_id, fingerprint)

    def add_fingerprint(self, document_id: Hashable, fingerprint: Fingerprint) -> bool:
        if fingerprint.is_empty:
            self.parse_failures.append(document_id)
            return False
        self.fingerprints[document_id] = fingerprint
        self.index.add(document_id, fingerprint.text)
        return True

    def add_corpus(self, documents: Iterable[tuple[Hashable, str]]) -> int:
        """Index many documents; returns the number successfully indexed."""
        added = 0
        for document_id, source in documents:
            if self.add_document(document_id, source):
                added += 1
        return added

    def __len__(self) -> int:
        return len(self.fingerprints)

    # -- matching ---------------------------------------------------------------
    def fingerprint_source(self, source: str) -> Fingerprint:
        """Fingerprint a query snippet without indexing it."""
        return self.generator.from_source(source)

    def find_clones(
        self,
        source: Optional[str] = None,
        *,
        fingerprint: Optional[Fingerprint] = None,
        similarity_threshold: Optional[float] = None,
        ngram_threshold: Optional[float] = None,
    ) -> list[CloneMatch]:
        """Find indexed documents that contain a clone of the query.

        Either ``source`` or a precomputed ``fingerprint`` must be given.
        Results are sorted by decreasing similarity.
        """
        if fingerprint is None:
            if source is None:
                raise ValueError("either source or fingerprint is required")
            fingerprint = self.generator.from_source(source)
        epsilon = (self.similarity_threshold if similarity_threshold is None else similarity_threshold) * 100.0
        eta = self.ngram_threshold if ngram_threshold is None else ngram_threshold
        matches: list[CloneMatch] = []
        for document_id in self.index.candidates(fingerprint.text, eta):
            candidate = self.fingerprints[document_id]
            score = order_independent_similarity(fingerprint, candidate)
            if score >= epsilon:
                matches.append(CloneMatch(document_id=document_id, similarity=score))
        matches.sort(key=lambda match: (-match.similarity, str(match.document_id)))
        return matches

    def similarity(self, first_id: Hashable, second_id: Hashable) -> float:
        """Order-independent similarity between two indexed documents."""
        return order_independent_similarity(self.fingerprints[first_id], self.fingerprints[second_id])

    def pairwise_clones(
        self,
        similarity_threshold: Optional[float] = None,
        ngram_threshold: Optional[float] = None,
    ) -> dict[Hashable, list[CloneMatch]]:
        """For every indexed document, the other documents it is a clone of.

        This reproduces the honeypot evaluation protocol of Section 5.7.1
        where each contract is compared against all other contracts.
        """
        result: dict[Hashable, list[CloneMatch]] = {}
        for document_id, fingerprint in self.fingerprints.items():
            matches = self.find_clones(
                fingerprint=fingerprint,
                similarity_threshold=similarity_threshold,
                ngram_threshold=ngram_threshold,
            )
            result[document_id] = [match for match in matches if match.document_id != document_id]
        return result
