"""The staged clone-matching engine (Section 5.5, Algorithm 1).

Clone matching is two explicitly separated stages:

1. **candidate generation** — the :math:`\\eta` N-gram pre-filter,
   delegated to :meth:`repro.ccd.ngram_index.NGramIndex.candidates_from_grams`
   (postings walked in ascending document-frequency order, count cutoff,
   length pruning);
2. **verification** — Algorithm 1's order-independent score over
   sub-fingerprint edit distances, computed by a pluggable
   :class:`SimilarityBackend`.

Three backends ship:

* ``"exact"`` — the naive reference: a full Levenshtein distance for
  every (sub₁, sub₂) pair of every candidate.  This is the seed
  semantics, kept as the parity baseline and for benchmarking.
* ``"bounded"`` (default) — byte-identical matches and scores, several
  times faster: a length-difference upper bound skips pairs that cannot
  beat the current best, the Levenshtein computation is banded/cut off
  at the distance still worth knowing, a running mean upper bound
  abandons a candidate once :math:`\\epsilon` is unreachable, and the
  pipeline's score memo reuses (sub₁, sub₂) scores across candidates
  (the same sub-fingerprints repeat heavily within a corpus).
* ``"myers"`` — all of the bounded backend's pruning, with the pair
  distance computed by Myers' bit-parallel kernel
  (:func:`repro.ccd.similarity.myers_bounded_edit_distance`): 64 DP
  columns advance per machine word per step, several times faster again
  on the pairs that survive the bounds.

The pair memo is no longer per-query: the pipeline owns a corpus-global
:class:`repro.ccd.score_memo.ScoreMemoTable`, so each distinct
(sub₁, sub₂) score is computed once per corpus *lifetime* — shared
across queries, jobs, and (when a disk tier is attached) daemon
restarts.  δ is a pure function of the two strings, so the sharing is
invisible to reported matches.

Exactness argument for the bounded backend: a pair score is only ever
*skipped* when a conservative upper bound proves it cannot raise the
candidate's per-sub best to a value that matters — either it cannot beat
the current best, or the candidate would be abandoned by the mean bound
regardless.  Every score that contributes to a *reported* match is
computed by the same float expression as the exact backend, so reported
:class:`CloneMatch` lists are byte-identical (enforced by the parity
suite in ``tests/test_ccd_matcher.py``).  All bound comparisons carry a
small slack so float rounding can only ever make the engine prune less,
never differently.
"""

from __future__ import annotations

import bisect
import threading
import time
from dataclasses import dataclass, fields
from typing import Dict, Hashable, Optional, Union

from repro.ccd.fingerprint import Fingerprint
from repro.ccd.ngram_index import NGramIndex, ngrams
from repro.ccd.score_memo import ScoreMemoTable
from repro.ccd.similarity import (
    bounded_edit_distance,
    myers_bounded_edit_distance,
    myers_word_count,
    sub_fingerprint_similarity,
)

#: slack applied to every pruning bound: float rounding may only ever
#: cause the bounded backend to prune *less* than the real bound allows
_SLACK = 1e-6


@dataclass(frozen=True)
class CloneMatch:
    """A detected clone relation between a query and an indexed document."""

    document_id: Hashable
    similarity: float

    def __repr__(self):
        return f"CloneMatch({self.document_id!r}, {self.similarity:.3f})"


@dataclass
class MatchStats:
    """Per-stage counters and timings of a :class:`MatchPipeline`.

    Candidate-generation stage: ``grams`` (query N-grams seen),
    ``postings_scanned`` (posting entries walked),
    ``candidates_considered`` (documents that entered the count map),
    ``pruned_by_length`` (documents never admitted because their indexed
    gram set is too small to reach :math:`\\eta`), ``pruned_by_prefix``
    (posting entries skipped after the admission cutoff), and
    ``candidates_generated`` (documents that passed :math:`\\eta`).

    Verification stage: ``verified`` (candidates scored), ``matched``
    (candidates at or above :math:`\\epsilon`), ``abandoned_by_mean``
    (candidates dropped once the running mean bound proved
    :math:`\\epsilon` unreachable), ``pairs_scored`` (edit distances
    actually computed), ``pairs_skipped_by_bound`` (pairs skipped via the
    length-difference upper bound), ``pairs_cutoff`` (banded Levenshtein
    runs abandoned at the distance limit), ``memo_hits`` /
    ``memo_misses`` (pair-score lookups answered / not answered by the
    corpus-global score memo), and ``myers_words`` (64-bit machine words
    advanced by the bit-parallel kernel — zero for the DP backends).
    """

    queries: int = 0
    grams: int = 0
    postings_scanned: int = 0
    candidates_considered: int = 0
    candidates_generated: int = 0
    pruned_by_length: int = 0
    pruned_by_prefix: int = 0
    verified: int = 0
    matched: int = 0
    abandoned_by_mean: int = 0
    pairs_scored: int = 0
    pairs_skipped_by_bound: int = 0
    pairs_cutoff: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    myers_words: int = 0
    #: sub-fingerprints carried over unchanged when a document was
    #: re-ingested (function-granular replace in the detector)
    functions_reused: int = 0
    #: sub-fingerprints that were new or changed on re-ingest
    functions_reanalyzed: int = 0
    candidate_seconds: float = 0.0
    verify_seconds: float = 0.0

    def merge(self, other: "MatchStats") -> "MatchStats":
        """Accumulate another stats object into this one (returns self)."""
        for field in fields(self):
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))
        return self

    def as_dict(self) -> dict:
        """Plain-dict form (for reports and the CLI profile table)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    def stage_rows(self) -> list[list]:
        """``[stage, counter, value]`` rows for a profile table.

        The per-stage seconds are summed over queries — under a thread
        backend concurrent queries overlap, so this is aggregate time
        spent in the stage, not elapsed wall clock.
        """
        rows: list[list] = [
            ["candidates", "seconds (summed over queries)",
             f"{self.candidate_seconds:.3f}"],
            ["candidates", "queries", self.queries],
            ["candidates", "query n-grams", self.grams],
            ["candidates", "postings scanned", self.postings_scanned],
            ["candidates", "considered", self.candidates_considered],
            ["candidates", "generated", self.candidates_generated],
            ["candidates", "pruned by length bucket", self.pruned_by_length],
            ["candidates", "pruned by count cutoff", self.pruned_by_prefix],
            ["verification", "seconds (summed over queries)",
             f"{self.verify_seconds:.3f}"],
            ["verification", "candidates verified", self.verified],
            ["verification", "matches", self.matched],
            ["verification", "abandoned by mean bound", self.abandoned_by_mean],
            ["verification", "pair distances computed", self.pairs_scored],
            ["verification", "pairs skipped by length bound", self.pairs_skipped_by_bound],
            ["verification", "pairs cut off by band", self.pairs_cutoff],
            ["verification", "pair memo hits", self.memo_hits],
            ["verification", "pair memo misses", self.memo_misses],
            ["verification", "bit-parallel words", self.myers_words],
            ["ingest", "functions reused", self.functions_reused],
            ["ingest", "functions re-analyzed", self.functions_reanalyzed],
        ]
        return rows


@dataclass(frozen=True)
class PreparedCandidate:
    """A candidate's sub-fingerprints, derived once and reused per query.

    ``subs`` preserves the fingerprint's original order (what the exact
    reference iterates); ``by_length``/``lengths`` are the same subs
    sorted by length (what the bounded backend's nearest-length-first
    walk consumes).  The source fingerprint rides along so a pipeline
    cache can detect a re-added document by identity.
    """

    fingerprint: Fingerprint
    subs: tuple
    by_length: tuple
    lengths: tuple

    @classmethod
    def of(cls, fingerprint: Fingerprint) -> "PreparedCandidate":
        """Derive the prepared form of one fingerprint."""
        subs = tuple(sub for sub in fingerprint.sub_fingerprints if sub)
        by_length = tuple(sorted(subs, key=len))
        return cls(fingerprint=fingerprint, subs=subs, by_length=by_length,
                   lengths=tuple(len(sub) for sub in by_length))


class SimilarityBackend:
    """Verification strategy: Algorithm 1 over one (query, candidate) pair.

    ``verify`` receives the query's non-empty sub-fingerprint list, the
    candidate's :class:`PreparedCandidate`, and the decision threshold
    :math:`\\epsilon` (in percent); it returns the order-independent
    score, or ``None`` when the backend proved the score is below
    :math:`\\epsilon` without computing it exactly.  The score of any
    candidate at or above :math:`\\epsilon` must be the exact Algorithm 1
    value.
    """

    name = "?"

    def verify(
        self,
        first_subs: list[str],
        candidate: PreparedCandidate,
        epsilon: float,
        memo: ScoreMemoTable,
        stats: MatchStats,
    ) -> Optional[float]:
        """The order-independent score, or ``None`` when provably below ε.

        ``memo`` is the pipeline's corpus-global score memo (any mapping
        with ``get``/``__setitem__`` over canonical pair keys works);
        backends that prune may read and write it, the exact reference
        ignores it.
        """
        raise NotImplementedError


def _memo_key(first: str, second: str) -> tuple:
    """Canonical memo key: δ is symmetric, so order the pair."""
    return (first, second) if first <= second else (second, first)


class ExactSimilarityBackend(SimilarityBackend):
    """The naive reference verifier: every pair, full edit distance.

    This reproduces the seed implementation of Algorithm 1 verbatim
    (including float evaluation order) and is the baseline the bounded
    backend is compared against — both for parity and in ``bench_fig5``.
    """

    name = "exact"

    def verify(self, first_subs, candidate, epsilon, memo, stats):
        """Score the candidate exactly (Algorithm 1, no pruning)."""
        best_sum = 0.0
        for sub_first in first_subs:
            best = 0.0
            for sub_second in candidate.subs:
                score = sub_fingerprint_similarity(sub_first, sub_second)
                stats.pairs_scored += 1
                if score > best:
                    best = score
                    if best >= 100.0:
                        break
            best_sum += best
        return best_sum / len(first_subs)


class BoundedSimilarityBackend(SimilarityBackend):
    """The pruned verifier: identical reported scores, far fewer distances.

    See the module docstring for the pruning inventory and the argument
    for why reported matches stay byte-identical to the exact backend.
    """

    name = "bounded"

    def _pair_distance(self, sub_first, sub_second, limit, stats):
        """The limit-aware distance of one pair (the myers backend's hook).

        Must honour the :func:`bounded_edit_distance` contract: exactly
        the Levenshtein distance when it is at most ``limit``, ``None``
        otherwise.  Everything else about the two backends — bounds,
        memo, abandonment — is shared.
        """
        return bounded_edit_distance(sub_first, sub_second, limit)

    def verify(self, first_subs, candidate, epsilon, memo, stats):
        """Score the candidate, abandoning once ε is provably unreachable."""
        total = len(first_subs)
        # the final decision is mean >= epsilon; in sum space that is
        # sum >= epsilon * total (slack keeps the comparison conservative)
        target = epsilon * total
        by_length = candidate.by_length
        lengths = candidate.lengths
        count = len(by_length)
        best_sum = 0.0
        for index, sub_first in enumerate(first_subs):
            remaining = total - index - 1
            # the smallest per-sub best that keeps the candidate alive,
            # assuming every later sub scores a perfect 100
            needed = target - best_sum - 100.0 * remaining - _SLACK
            length_first = len(sub_first)
            best = 0.0
            # visit candidates nearest in length first (two pointers
            # walking outward from the query sub's length): the max is
            # order-independent, but an early tight `best` shrinks every
            # later band; similar lengths are where high scores live
            right = bisect.bisect_left(lengths, length_first)
            left = right - 1
            while left >= 0 or right < count:
                if right >= count or (left >= 0 and
                        length_first - lengths[left] <= lengths[right] - length_first):
                    sub_second, length_second = by_length[left], lengths[left]
                    left -= 1
                else:
                    sub_second, length_second = by_length[right], lengths[right]
                    right += 1
                longest = length_first if length_first >= length_second else length_second
                # d(s1, s2) >= |len(s1) - len(s2)| bounds the pair score
                # from above without touching the strings
                bound = (longest - abs(length_first - length_second)) / longest * 100.0
                if bound <= best or bound < needed:
                    stats.pairs_skipped_by_bound += 1
                    continue
                key = _memo_key(sub_first, sub_second)
                score = memo.get(key)
                if score is not None and score < 0.0:
                    # a remembered cutoff: the true score is provably
                    # below -score; skip when that already rules the pair
                    # out here, else fall through and recompute (which
                    # tightens or upgrades the stored entry)
                    if -score <= best or -score < needed:
                        stats.memo_hits += 1
                        continue
                    score = None
                if score is not None:
                    stats.memo_hits += 1
                else:
                    stats.memo_misses += 1
                    if sub_first == sub_second:
                        score = 100.0
                    else:
                        # the pair only matters if its score can both beat
                        # `best` and reach `needed`; translate the tighter
                        # of the two into a distance band (+2: float cushion)
                        ceiling = longest * (100.0 - best) / 100.0
                        if needed > best:
                            ceiling = longest * (100.0 - needed) / 100.0
                        limit = int(ceiling) + 2
                        if limit > longest:
                            limit = longest
                        distance = self._pair_distance(
                            sub_first, sub_second, limit, stats)
                        if distance is None:
                            stats.pairs_cutoff += 1
                            # d > limit proves score < this bound, which is
                            # itself below max(best, needed) — tight enough
                            # to answer the same context from a warm memo
                            memo[key] = -((longest - limit) / longest * 100.0)
                            continue
                        stats.pairs_scored += 1
                        # identical float expression to the exact backend
                        score = (longest - distance) / longest * 100.0
                    memo[key] = score
                if score > best:
                    best = score
                    if best >= 100.0:
                        break
            best_sum += best
            if best_sum + 100.0 * remaining < target - _SLACK:
                stats.abandoned_by_mean += 1
                return None
        return best_sum / total


class MyersSimilarityBackend(BoundedSimilarityBackend):
    """The bounded verifier with a bit-parallel distance kernel.

    Inherits every pruning decision from
    :class:`BoundedSimilarityBackend` — bounds, memo, and abandonment
    are byte-for-byte the same, so parity with ``exact`` carries over —
    and swaps only the pair-distance computation for Myers' algorithm:
    the whole pattern dimension advances 64 DP cells per machine word
    per text character instead of one band cell per interpreted loop
    iteration.  ``MatchStats.myers_words`` counts the words advanced.
    """

    name = "myers"

    def _pair_distance(self, sub_first, sub_second, limit, stats):
        """Myers' bit-parallel distance, same contract as the DP band."""
        stats.myers_words += myers_word_count(sub_first, sub_second)
        return myers_bounded_edit_distance(sub_first, sub_second, limit)


#: registry of the built-in verification backends
SIMILARITY_BACKENDS: Dict[str, type] = {
    ExactSimilarityBackend.name: ExactSimilarityBackend,
    BoundedSimilarityBackend.name: BoundedSimilarityBackend,
    MyersSimilarityBackend.name: MyersSimilarityBackend,
}

#: the default verification backend
DEFAULT_SIMILARITY_BACKEND = BoundedSimilarityBackend.name


def resolve_similarity_backend(
    backend: Union[str, SimilarityBackend, None],
) -> SimilarityBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` resolves to the default (``"bounded"``); unknown names raise
    ``ValueError`` listing the registered backends.
    """
    if backend is None:
        backend = DEFAULT_SIMILARITY_BACKEND
    if isinstance(backend, SimilarityBackend):
        return backend
    try:
        return SIMILARITY_BACKENDS[backend]()
    except KeyError:
        raise ValueError(
            f"unknown similarity backend {backend!r}; registered: "
            f"{', '.join(sorted(SIMILARITY_BACKENDS))}") from None


class MatchPipeline:
    """The staged matcher: candidate generation, then verification.

    Owns live references to a detector's :class:`NGramIndex` and
    fingerprint map, the configured :class:`SimilarityBackend`, the
    corpus-global :class:`ScoreMemoTable`, and the accumulated per-stage
    :class:`MatchStats`.  One pipeline serves every query of its
    detector; ``stats`` and the score memo accumulate across queries.

    ``score_memo`` defaults to a fresh in-memory table (corpus-lifetime
    reuse with no disk tier); pass a persistent table to share scores
    across process restarts.
    """

    def __init__(
        self,
        index: NGramIndex,
        fingerprints: Dict[Hashable, Fingerprint],
        backend: Union[str, SimilarityBackend, None] = None,
        score_memo: Optional[ScoreMemoTable] = None,
    ):
        self.index = index
        self.fingerprints = fingerprints
        self.backend = resolve_similarity_backend(backend)
        self.score_memo = score_memo if score_memo is not None else ScoreMemoTable()
        self.stats = MatchStats()
        # queries may run concurrently (thread-backend sessions share one
        # detector); each query accumulates into a local MatchStats and
        # merges it under this lock, so counters never lose updates
        self._stats_lock = threading.Lock()
        # per-document PreparedCandidate cache, validated by fingerprint
        # identity so re-added documents are re-derived (dict get/set are
        # atomic under the GIL; a racing miss only recomputes)
        self._prepared: Dict[Hashable, PreparedCandidate] = {}

    def __repr__(self):
        return (f"MatchPipeline(backend={self.backend.name!r}, "
                f"documents={len(self.fingerprints)})")

    def forget(self, document_id: Hashable) -> None:
        """Drop a retired document's prepared-candidate cache entry."""
        self._prepared.pop(document_id, None)

    def __getstate__(self):
        """Pickle support: the stats lock is dropped and recreated."""
        state = dict(self.__dict__)
        del state["_stats_lock"]
        return state

    def __setstate__(self, state):
        """Restore a pickled pipeline with a fresh stats lock."""
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    def match(
        self,
        fingerprint: Fingerprint,
        ngram_threshold: float,
        epsilon: float,
    ) -> list[CloneMatch]:
        """Indexed documents containing a clone of ``fingerprint``.

        ``ngram_threshold`` is the paper's :math:`\\eta` (fraction in
        0..1); ``epsilon`` is the clone decision threshold in *percent*
        (0..100).  Results are sorted by decreasing similarity with the
        document id as the tie-breaker, exactly like the seed
        implementation.
        """
        stats = MatchStats()
        stats.queries += 1
        started = time.perf_counter()
        stage_counters: dict = {}
        candidates = self.index.candidates_from_grams(
            ngrams(fingerprint.text, self.index.ngram_size),
            ngram_threshold, stats=stage_counters)
        stats.grams += stage_counters.get("grams", 0)
        stats.postings_scanned += stage_counters.get("postings_scanned", 0)
        stats.candidates_considered += stage_counters.get("candidates_considered", 0)
        stats.pruned_by_length += stage_counters.get("pruned_by_length", 0)
        stats.pruned_by_prefix += stage_counters.get("pruned_by_prefix", 0)
        stats.candidates_generated += len(candidates)
        stats.candidate_seconds += time.perf_counter() - started

        started = time.perf_counter()
        first_subs = [sub for sub in fingerprint.sub_fingerprints if sub]
        memo = self.score_memo
        matches: list[CloneMatch] = []
        for document_id in candidates:
            stats.verified += 1
            candidate_fingerprint = self.fingerprints[document_id]
            candidate = self._prepared.get(document_id)
            if candidate is None or candidate.fingerprint is not candidate_fingerprint:
                candidate = PreparedCandidate.of(candidate_fingerprint)
                self._prepared[document_id] = candidate
            if not first_subs or not candidate.subs:
                score: Optional[float] = 0.0
            else:
                score = self.backend.verify(
                    first_subs, candidate, epsilon, memo, stats)
            if score is not None and score >= epsilon:
                matches.append(CloneMatch(document_id=document_id, similarity=score))
        stats.matched += len(matches)
        stats.verify_seconds += time.perf_counter() - started
        with self._stats_lock:
            self.stats.merge(stats)
        matches.sort(key=lambda match: (-match.similarity, str(match.document_id)))
        return matches


__all__ = [
    "CloneMatch",
    "DEFAULT_SIMILARITY_BACKEND",
    "BoundedSimilarityBackend",
    "ExactSimilarityBackend",
    "MatchPipeline",
    "MatchStats",
    "MyersSimilarityBackend",
    "PreparedCandidate",
    "SIMILARITY_BACKENDS",
    "SimilarityBackend",
    "resolve_similarity_backend",
]
