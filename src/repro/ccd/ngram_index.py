"""In-memory N-gram inverted index — the Elasticsearch substitute.

The paper stores fingerprint N-grams in Elasticsearch and retrieves, for a
query fingerprint, only the fingerprints sharing at least an
:math:`\\eta`-fraction of its N-grams (Section 5.5).  This module provides
the same candidate pre-filtering with an in-memory inverted index.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, Optional

#: shared empty posting, so absent grams sort by length without allocating
_EMPTY_POSTING: frozenset = frozenset()


def ngrams(text: str, size: int) -> set[str]:
    """The set of character N-grams of ``text`` (whole text when shorter than N)."""
    cleaned = text.replace(".", "").replace(":", "")
    if not cleaned:
        return set()
    if len(cleaned) <= size:
        return {cleaned}
    return {cleaned[index:index + size] for index in range(len(cleaned) - size + 1)}


class NGramIndex:
    """Inverted index from fingerprint N-grams to document identifiers."""

    def __init__(self, ngram_size: int = 3):
        if ngram_size < 1:
            raise ValueError("ngram_size must be >= 1")
        self.ngram_size = ngram_size
        self._postings: dict[str, set[Hashable]] = defaultdict(set)
        self._document_grams: dict[Hashable, set[str]] = {}

    def __len__(self) -> int:
        return len(self._document_grams)

    def __contains__(self, document_id: Hashable) -> bool:
        return document_id in self._document_grams

    def add(self, document_id: Hashable, fingerprint_text: str) -> None:
        """Index ``fingerprint_text`` under ``document_id`` (idempotent)."""
        self.add_grams(document_id, ngrams(fingerprint_text, self.ngram_size))

    def add_grams(self, document_id: Hashable, grams: set[str] | frozenset[str]) -> None:
        """Index a precomputed N-gram set (e.g. a cached ``SourceArtifact.ngrams``).

        Re-adding a known document replaces its indexed gram set: the old
        grams' postings are purged first, so grams the new text no longer
        contains stop yielding the document as a candidate.
        """
        if document_id in self._document_grams:
            self.remove(document_id)
        self._document_grams[document_id] = set(grams)
        for gram in grams:
            self._postings[gram].add(document_id)

    def add_many(self, documents: Iterable[tuple[Hashable, str]]) -> None:
        for document_id, fingerprint_text in documents:
            self.add(document_id, fingerprint_text)

    def grams_for(self, document_id: Hashable) -> Optional[frozenset]:
        """The indexed N-gram set of a document, or ``None`` when unknown.

        Used by :mod:`repro.ccd.index_io` to serialize the index without
        recomputing N-grams from fingerprint text.
        """
        grams = self._document_grams.get(document_id)
        return frozenset(grams) if grams is not None else None

    def remove(self, document_id: Hashable) -> None:
        grams = self._document_grams.pop(document_id, set())
        for gram in grams:
            self._postings[gram].discard(document_id)

    def candidates(self, fingerprint_text: str, threshold: float = 0.5) -> list[Hashable]:
        """Documents sharing at least ``threshold`` of the query's N-grams.

        A threshold of ``0.5`` means a candidate must contain at least 50 %
        of the N-grams of the fingerprint being searched for (the paper's
        :math:`\\eta` parameter).
        """
        return self.candidates_from_grams(
            ngrams(fingerprint_text, self.ngram_size), threshold)

    def candidates_from_grams(
        self,
        query_grams: set[str] | frozenset[str],
        threshold: float = 0.5,
        stats: Optional[dict] = None,
    ) -> list[Hashable]:
        """Candidate generation from a precomputed query N-gram set.

        The postings lists of the query's grams are walked in ascending
        document-frequency order with two *exact* prunes (the candidate
        set is identical to counting every posting):

        * **count cutoff** — once too few grams remain for a new document
          to still reach ``threshold * len(query_grams)`` shared grams,
          the remaining (largest) postings lists only increment documents
          already under consideration instead of admitting new ones;
        * **length pruning** — a document indexed with fewer grams than
          the required count can never qualify and is never admitted.

        ``stats``, when given, is a mutable mapping whose
        ``postings_scanned`` / ``candidates_considered`` /
        ``pruned_by_length`` / ``pruned_by_prefix`` counters are
        incremented (see :class:`repro.ccd.matcher.MatchStats`).
        """
        if not query_grams:
            return []
        required = threshold * len(query_grams)
        ordered = sorted(
            (self._postings.get(gram, _EMPTY_POSTING) for gram in query_grams), key=len)
        total = len(ordered)
        # positions 0..cutoff-1 can still admit new documents: a document
        # first seen at position p shares at most (total - p) query grams
        cutoff = total
        for position in range(total):
            if total - position < required:
                cutoff = position
                break
        counts: dict[Hashable, int] = {}
        pruned: set[Hashable] = set()
        scanned = 0
        tail_skipped = 0
        document_grams = self._document_grams
        for posting in ordered[:cutoff]:
            scanned += len(posting)
            for document_id in posting:
                count = counts.get(document_id)
                if count is not None:
                    counts[document_id] = count + 1
                elif document_id not in pruned:
                    if len(document_grams[document_id]) < required:
                        pruned.add(document_id)
                    else:
                        counts[document_id] = 1
        for posting in ordered[cutoff:]:
            scanned += len(posting)
            for document_id in posting:
                count = counts.get(document_id)
                if count is not None:
                    counts[document_id] = count + 1
                else:
                    tail_skipped += 1
        result = [document_id for document_id, count in counts.items() if count >= required]
        if stats is not None:
            stats["grams"] = stats.get("grams", 0) + total
            stats["postings_scanned"] = stats.get("postings_scanned", 0) + scanned
            stats["candidates_considered"] = \
                stats.get("candidates_considered", 0) + len(counts)
            stats["pruned_by_length"] = stats.get("pruned_by_length", 0) + len(pruned)
            stats["pruned_by_prefix"] = stats.get("pruned_by_prefix", 0) + tail_skipped
        return result

    def overlap(self, fingerprint_text: str, document_id: Hashable) -> float:
        """Fraction of the query's N-grams present in an indexed document."""
        query_grams = ngrams(fingerprint_text, self.ngram_size)
        if not query_grams or document_id not in self._document_grams:
            return 0.0
        document_grams = self._document_grams[document_id]
        return len(query_grams & document_grams) / len(query_grams)
