"""In-memory N-gram inverted index — the Elasticsearch substitute.

The paper stores fingerprint N-grams in Elasticsearch and retrieves, for a
query fingerprint, only the fingerprints sharing at least an
:math:`\\eta`-fraction of its N-grams (Section 5.5).  This module provides
the same candidate pre-filtering with an in-memory inverted index.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, Optional


def ngrams(text: str, size: int) -> set[str]:
    """The set of character N-grams of ``text`` (whole text when shorter than N)."""
    cleaned = text.replace(".", "").replace(":", "")
    if not cleaned:
        return set()
    if len(cleaned) <= size:
        return {cleaned}
    return {cleaned[index:index + size] for index in range(len(cleaned) - size + 1)}


class NGramIndex:
    """Inverted index from fingerprint N-grams to document identifiers."""

    def __init__(self, ngram_size: int = 3):
        if ngram_size < 1:
            raise ValueError("ngram_size must be >= 1")
        self.ngram_size = ngram_size
        self._postings: dict[str, set[Hashable]] = defaultdict(set)
        self._document_grams: dict[Hashable, set[str]] = {}

    def __len__(self) -> int:
        return len(self._document_grams)

    def __contains__(self, document_id: Hashable) -> bool:
        return document_id in self._document_grams

    def add(self, document_id: Hashable, fingerprint_text: str) -> None:
        """Index ``fingerprint_text`` under ``document_id`` (idempotent)."""
        self.add_grams(document_id, ngrams(fingerprint_text, self.ngram_size))

    def add_grams(self, document_id: Hashable, grams: set[str] | frozenset[str]) -> None:
        """Index a precomputed N-gram set (e.g. a cached ``SourceArtifact.ngrams``)."""
        self._document_grams[document_id] = set(grams)
        for gram in grams:
            self._postings[gram].add(document_id)

    def add_many(self, documents: Iterable[tuple[Hashable, str]]) -> None:
        for document_id, fingerprint_text in documents:
            self.add(document_id, fingerprint_text)

    def grams_for(self, document_id: Hashable) -> Optional[frozenset]:
        """The indexed N-gram set of a document, or ``None`` when unknown.

        Used by :mod:`repro.ccd.index_io` to serialize the index without
        recomputing N-grams from fingerprint text.
        """
        grams = self._document_grams.get(document_id)
        return frozenset(grams) if grams is not None else None

    def remove(self, document_id: Hashable) -> None:
        grams = self._document_grams.pop(document_id, set())
        for gram in grams:
            self._postings[gram].discard(document_id)

    def candidates(self, fingerprint_text: str, threshold: float = 0.5) -> list[Hashable]:
        """Documents sharing at least ``threshold`` of the query's N-grams.

        A threshold of ``0.5`` means a candidate must contain at least 50 %
        of the N-grams of the fingerprint being searched for (the paper's
        :math:`\\eta` parameter).
        """
        query_grams = ngrams(fingerprint_text, self.ngram_size)
        if not query_grams:
            return []
        counts: dict[Hashable, int] = defaultdict(int)
        for gram in query_grams:
            for document_id in self._postings.get(gram, ()):
                counts[document_id] += 1
        required = threshold * len(query_grams)
        return [document_id for document_id, count in counts.items() if count >= required]

    def overlap(self, fingerprint_text: str, document_id: Hashable) -> float:
        """Fraction of the query's N-grams present in an indexed document."""
        query_grams = ngrams(fingerprint_text, self.ngram_size)
        if not query_grams or document_id not in self._document_grams:
            return 0.0
        document_grams = self._document_grams[document_id]
        return len(query_grams & document_grams) / len(query_grams)
