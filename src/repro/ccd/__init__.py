"""CCD — the Contract Clone Detector.

CCD detects Type I–III code clones of Solidity snippets across large sets
of smart contracts (Section 5 of the paper).  The pipeline is

1. **parsing** with the tolerant snippet grammar,
2. **normalization** — identifiers are renamed to their declared type,
   contract/function/modifier names are canonicalised, string literals and
   visibility specifiers are dropped (Section 5.2),
3. **tokenization** into symbol-separated tokens (Section 5.3),
4. **fingerprint generation** with context-triggered piecewise (fuzzy)
   hashing; functions are separated by ``.`` and contracts by ``:``
   (Section 5.4),
5. **matching** through the staged :mod:`repro.ccd.matcher` engine: an
   N-gram candidate pre-filter walked in ascending document-frequency
   order, then verification of each candidate with the order-independent
   edit-distance similarity score (Section 5.5, Algorithm 1) under a
   pluggable :class:`~repro.ccd.matcher.SimilarityBackend` (``"bounded"``
   by default; ``"myers"`` is the same pruning over Myers' bit-parallel
   distance kernel; ``"exact"`` is the naive reference — all three report
   identical results).  Pair scores are memoized corpus-wide in a
   :class:`~repro.ccd.score_memo.ScoreMemoTable`, optionally persisted
   next to a saved index so reloaded corpora start warm.
"""

from repro.ccd.detector import CloneDetector
from repro.ccd.fingerprint import Fingerprint, FingerprintGenerator
from repro.ccd.fuzzyhash import FuzzyHasher, fuzzy_hash_tokens
from repro.ccd.index_io import IndexFormatError, load_index, save_index
from repro.ccd.matcher import (
    SIMILARITY_BACKENDS,
    CloneMatch,
    MatchPipeline,
    MatchStats,
    SimilarityBackend,
    resolve_similarity_backend,
)
from repro.ccd.ngram_index import NGramIndex
from repro.ccd.normalizer import NormalizedContract, NormalizedFunction, NormalizedUnit, Normalizer
from repro.ccd.score_memo import SCORE_MEMO_NAME, ScoreMemoTable
from repro.ccd.similarity import (
    bounded_edit_distance,
    edit_distance,
    myers_bounded_edit_distance,
    myers_edit_distance,
    order_independent_similarity,
    sub_fingerprint_similarity,
)

__all__ = [
    "CloneDetector",
    "CloneMatch",
    "Fingerprint",
    "FingerprintGenerator",
    "FuzzyHasher",
    "IndexFormatError",
    "MatchPipeline",
    "MatchStats",
    "NGramIndex",
    "NormalizedContract",
    "NormalizedFunction",
    "NormalizedUnit",
    "Normalizer",
    "SCORE_MEMO_NAME",
    "SIMILARITY_BACKENDS",
    "ScoreMemoTable",
    "SimilarityBackend",
    "bounded_edit_distance",
    "edit_distance",
    "fuzzy_hash_tokens",
    "load_index",
    "myers_bounded_edit_distance",
    "myers_edit_distance",
    "order_independent_similarity",
    "resolve_similarity_backend",
    "save_index",
    "sub_fingerprint_similarity",
]
