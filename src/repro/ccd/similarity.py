"""Fingerprint similarity: edit distance and the order-independent score.

Implements the similarity function of Section 5.5:

.. math::

    \\delta(s_1, s_2) = \\frac{\\max(len(s_1), len(s_2)) - d(s_1, s_2)}
                             {\\max(len(s_1), len(s_2))} \\cdot 100

and Algorithm 1, which matches every sub-fingerprint of :math:`f_1` against
all sub-fingerprints of :math:`f_2`, keeps the best match per
sub-fingerprint, and averages the maxima.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence

from repro.ccd.fingerprint import Fingerprint


def _strip_common_affixes(first: str, second: str) -> tuple[str, str]:
    """Drop the shared prefix and suffix — they never contribute to the distance."""
    start = 0
    shortest = min(len(first), len(second))
    while start < shortest and first[start] == second[start]:
        start += 1
    end_first, end_second = len(first), len(second)
    while end_first > start and end_second > start \
            and first[end_first - 1] == second[end_second - 1]:
        end_first -= 1
        end_second -= 1
    return first[start:end_first], second[start:end_second]


def edit_distance(first: str, second: str) -> int:
    """Levenshtein edit distance between two strings (iterative, O(n*m)).

    Fast paths handle the shapes that dominate fingerprint matching
    before the quadratic loop runs: equal strings, strings that are
    equal after stripping their common prefix/suffix (one stretch of
    insertions — e.g. one string is a prefix of the other, where the
    distance is just the length difference), and single-character
    remainders.
    """
    if first == second:
        return 0
    first, second = _strip_common_affixes(first, second)
    if not first:
        return len(second)
    if not second:
        return len(first)
    if len(first) < len(second):
        first, second = second, first
    if len(second) == 1:
        # align the lone character to a match if one exists: then the
        # rest are deletions; otherwise one of them is a substitution
        return len(first) - (1 if second in first else 0)
    previous = list(range(len(second) + 1))
    for row, char_first in enumerate(first, start=1):
        current = [row]
        for column, char_second in enumerate(second, start=1):
            insert_cost = current[column - 1] + 1
            delete_cost = previous[column] + 1
            substitute_cost = previous[column - 1] + (0 if char_first == char_second else 1)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def bounded_edit_distance(first: str, second: str, limit: int) -> Optional[int]:
    """Levenshtein distance when it is at most ``limit``, else ``None``.

    A banded (Ukkonen-style) variant of :func:`edit_distance`: only the
    diagonal band of width ``2 * limit + 1`` is filled in, so the cost is
    O(max_len * limit) instead of O(n * m).  When the true distance is
    within the band the returned value is **exactly** the Levenshtein
    distance; when every band cell exceeds ``limit`` the computation is
    abandoned early and ``None`` is returned.
    """
    if first == second:
        return 0
    if limit <= 0:
        return None
    # d(s1, s2) >= |len(s1) - len(s2)|: a limit below the length difference
    # can never be met, so bail before even touching the characters (the
    # affix strip below preserves the length difference, so nothing is lost)
    if abs(len(first) - len(second)) > limit:
        return None
    first, second = _strip_common_affixes(first, second)
    if not first:
        return len(second) if len(second) <= limit else None
    if not second:
        return len(first) if len(first) <= limit else None
    if len(first) < len(second):
        first, second = second, first
    if len(second) == 1:
        distance = len(first) - (1 if second in first else 0)
        return distance if distance <= limit else None
    columns = len(second)
    big = limit + 1
    previous = [column if column <= limit else big for column in range(columns + 1)]
    # two reusable row buffers; cells outside the band are kept at `big`
    # by explicitly resetting the one boundary cell the next row can read
    current = [big] * (columns + 1)
    for row, char_first in enumerate(first, start=1):
        low = row - limit
        if low < 1:
            low = 1
        high = row + limit
        if high > columns:
            high = columns
        left = row if row <= limit else big
        current[low - 1] = left
        row_minimum = left
        for column in range(low, high + 1):
            value = previous[column - 1]
            if char_first != second[column - 1]:
                value += 1
            delete_cost = previous[column] + 1
            if delete_cost < value:
                value = delete_cost
            insert_cost = current[column - 1] + 1
            if insert_cost < value:
                value = insert_cost
            current[column] = value
            if value < row_minimum:
                row_minimum = value
        if row_minimum > limit:
            return None
        if high < columns:
            current[high + 1] = big
        previous, current = current, previous
    return previous[columns] if previous[columns] <= limit else None


@lru_cache(maxsize=65536)
def _myers_masks(pattern: str) -> dict:
    """Per-character match bitmasks of ``pattern`` (Myers' ``Peq`` table).

    Bit ``i`` of ``masks[c]`` is set when ``pattern[i] == c``.  Cached:
    sub-fingerprints repeat heavily across pairs, and the same pattern is
    matched against many texts — the mask table is the per-pattern setup
    cost of the bit-parallel kernel.
    """
    masks: dict = {}
    bit = 1
    for char in pattern:
        masks[char] = masks.get(char, 0) | bit
        bit <<= 1
    return masks


def _myers_loop(pattern: str, text: str, limit: Optional[int]) -> Optional[int]:
    """The bit-parallel core: Myers/Hyyrö edit distance of pattern vs text.

    One column of the DP matrix per *text* character, the whole *pattern*
    dimension held in big-int bitvectors (``VP``/``VN`` delta encoding) —
    64 DP cells advance per machine word per step, with Python's
    arbitrary-width ints extending past 64 pattern characters for free.

    With a ``limit``, the loop abandons as soon as the running score
    minus the remaining text length proves the final distance must
    exceed it (the score changes by at most 1 per text character), and
    the final distance is reported only when it is within the limit —
    the same contract as :func:`bounded_edit_distance`.  The cutoff is
    tracked as a budget counter, ``limit + remaining - score``, folded
    into the score branches so the hot loop carries no extra compare.
    """
    length = len(pattern)
    mask = (1 << length) - 1
    high = 1 << (length - 1)
    get = _myers_masks(pattern).get
    vp = mask
    vn = 0
    score = length
    if limit is None:
        for char in text:
            eq = get(char, 0)
            xv = eq | vn
            xh = (((eq & vp) + vp) ^ vp) | eq
            hp = vn | (mask & ~(xh | vp))
            hn = vp & xh
            if hp & high:
                score += 1
            elif hn & high:
                score -= 1
            hp = ((hp << 1) | 1) & mask
            hn = (hn << 1) & mask
            vp = hn | (mask & ~(xv | hp))
            vn = hp & xv
        return score
    # budget < 0 <=> score - remaining > limit: the final distance cannot
    # come back under the limit (each text char moves the score by <= 1)
    budget = limit + len(text) - score
    for char in text:
        eq = get(char, 0)
        xv = eq | vn
        xh = (((eq & vp) + vp) ^ vp) | eq
        hp = vn | (mask & ~(xh | vp))
        hn = vp & xh
        if hp & high:
            score += 1
            budget -= 2
            if budget < 0:
                return None
        elif hn & high:
            score -= 1
        else:
            budget -= 1
            if budget < 0:
                return None
        hp = ((hp << 1) | 1) & mask
        hn = (hn << 1) & mask
        vp = hn | (mask & ~(xv | hp))
        vn = hp & xv
    return score if score <= limit else None


def myers_edit_distance(first: str, second: str) -> int:
    """Levenshtein distance via Myers' bit-parallel algorithm (exact).

    Identical values to :func:`edit_distance` — the parity suite pins
    this — at a fraction of the interpreted work: the inner loop runs
    once per character of the shorter string and advances the entire
    other dimension with a handful of big-int operations.
    """
    if first == second:
        return 0
    first, second = _strip_common_affixes(first, second)
    if not first:
        return len(second)
    if not second:
        return len(first)
    if len(first) < len(second):
        first, second = second, first
    if len(second) == 1:
        return len(first) - (1 if second in first else 0)
    # pattern = longer string (bitvector width), text = shorter (loop count)
    return _myers_loop(first, second, None)


def myers_bounded_edit_distance(first: str, second: str, limit: int) -> Optional[int]:
    """Myers' bit-parallel distance when it is at most ``limit``, else ``None``.

    Same contract as :func:`bounded_edit_distance` (exactly the
    Levenshtein distance when within the limit, ``None`` otherwise), but
    the cutoff rides on the bit-parallel score instead of a DP band.
    """
    if first == second:
        return 0
    if limit <= 0:
        return None
    if abs(len(first) - len(second)) > limit:
        return None
    first, second = _strip_common_affixes(first, second)
    if not first:
        return len(second) if len(second) <= limit else None
    if not second:
        return len(first) if len(first) <= limit else None
    if len(first) < len(second):
        first, second = second, first
    if len(second) == 1:
        distance = len(first) - (1 if second in first else 0)
        return distance if distance <= limit else None
    return _myers_loop(first, second, limit)


def myers_word_count(first: str, second: str) -> int:
    """Machine words the bit-parallel kernel advances for one pair.

    One 64-bit word per 64 pattern characters, per text character —
    the profile counter behind ``MatchStats.myers_words``.
    """
    longer, shorter = (first, second) if len(first) >= len(second) else (second, first)
    return ((len(longer) + 63) >> 6) * max(1, len(shorter))


def sub_fingerprint_similarity(first: str, second: str) -> float:
    """The per-pair similarity δ in percent (0..100)."""
    longest = max(len(first), len(second))
    if longest == 0:
        return 100.0
    distance = edit_distance(first, second)
    return (longest - distance) / longest * 100.0


def order_independent_similarity(first: Fingerprint | Sequence[str], second: Fingerprint | Sequence[str]) -> float:
    """Algorithm 1: the order-independent similarity score ε in percent.

    Every sub-fingerprint of ``first`` is matched against all
    sub-fingerprints of ``second``; the best score per sub-fingerprint is
    kept and the scores are averaged.  The score is therefore asymmetric by
    design: it measures how well ``first`` (the snippet) is *contained* in
    ``second`` (the contract).
    """
    first_subs = list(first.sub_fingerprints) if isinstance(first, Fingerprint) else list(first)
    second_subs = list(second.sub_fingerprints) if isinstance(second, Fingerprint) else list(second)
    first_subs = [sub for sub in first_subs if sub]
    second_subs = [sub for sub in second_subs if sub]
    if not first_subs or not second_subs:
        return 0.0
    best_scores: list[float] = []
    for sub_first in first_subs:
        best = 0.0
        for sub_second in second_subs:
            score = sub_fingerprint_similarity(sub_first, sub_second)
            if score > best:
                best = score
                if best >= 100.0:
                    break
        best_scores.append(best)
    return sum(best_scores) / len(best_scores)
