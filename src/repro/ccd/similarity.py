"""Fingerprint similarity: edit distance and the order-independent score.

Implements the similarity function of Section 5.5:

.. math::

    \\delta(s_1, s_2) = \\frac{\\max(len(s_1), len(s_2)) - d(s_1, s_2)}
                             {\\max(len(s_1), len(s_2))} \\cdot 100

and Algorithm 1, which matches every sub-fingerprint of :math:`f_1` against
all sub-fingerprints of :math:`f_2`, keeps the best match per
sub-fingerprint, and averages the maxima.
"""

from __future__ import annotations

from typing import Sequence

from repro.ccd.fingerprint import Fingerprint


def edit_distance(first: str, second: str) -> int:
    """Levenshtein edit distance between two strings (iterative, O(n*m))."""
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    if len(first) < len(second):
        first, second = second, first
    previous = list(range(len(second) + 1))
    for row, char_first in enumerate(first, start=1):
        current = [row]
        for column, char_second in enumerate(second, start=1):
            insert_cost = current[column - 1] + 1
            delete_cost = previous[column] + 1
            substitute_cost = previous[column - 1] + (0 if char_first == char_second else 1)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def sub_fingerprint_similarity(first: str, second: str) -> float:
    """The per-pair similarity δ in percent (0..100)."""
    longest = max(len(first), len(second))
    if longest == 0:
        return 100.0
    distance = edit_distance(first, second)
    return (longest - distance) / longest * 100.0


def order_independent_similarity(first: Fingerprint | Sequence[str], second: Fingerprint | Sequence[str]) -> float:
    """Algorithm 1: the order-independent similarity score ε in percent.

    Every sub-fingerprint of ``first`` is matched against all
    sub-fingerprints of ``second``; the best score per sub-fingerprint is
    kept and the scores are averaged.  The score is therefore asymmetric by
    design: it measures how well ``first`` (the snippet) is *contained* in
    ``second`` (the contract).
    """
    first_subs = list(first.sub_fingerprints) if isinstance(first, Fingerprint) else list(first)
    second_subs = list(second.sub_fingerprints) if isinstance(second, Fingerprint) else list(second)
    first_subs = [sub for sub in first_subs if sub]
    second_subs = [sub for sub in second_subs if sub]
    if not first_subs or not second_subs:
        return 0.0
    best_scores: list[float] = []
    for sub_first in first_subs:
        best = 0.0
        for sub_second in second_subs:
            score = sub_fingerprint_similarity(sub_first, sub_second)
            if score > best:
                best = score
                if best >= 100.0:
                    break
        best_scores.append(best)
    return sum(best_scores) / len(best_scores)
