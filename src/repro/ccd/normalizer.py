"""Source normalization and tokenization for clone detection.

Reproduces Sections 5.1–5.3 of the paper:

* comments, whitespace and layout differences disappear because the token
  stream is produced from the parsed AST (Type-I clones),
* contract names become ``c``, library names ``l``, function names ``f``,
  modifier names ``m``; parameters and variables are renamed to their
  declared type (``uint`` when the type is unknown); string literals become
  ``stringLiteral``; visibility and mutability specifiers are removed
  (Type-II clones),
* state-variable and event declarations are ignored — only contract
  headers, function headers, and function-level statements are tokenized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.solidity import ast_nodes as ast
from repro.solidity.errors import SolidityParseError
from repro.solidity.parser import parse_snippet

_VISIBILITY_TOKENS = {"public", "private", "internal", "external", "view", "pure",
                      "constant", "payable", "virtual", "override"}


@dataclass
class NormalizedFunction:
    """The normalized token stream of one function (or free statement group)."""

    name: str = "f"
    tokens: list[str] = field(default_factory=list)

    def as_text(self) -> str:
        return " ".join(self.tokens)


@dataclass
class NormalizedContract:
    """The normalized token streams of one contract."""

    name: str = "c"
    kind: str = "contract"
    functions: list[NormalizedFunction] = field(default_factory=list)

    def as_text(self) -> str:
        return " ".join(function.as_text() for function in self.functions)


@dataclass
class NormalizedUnit:
    """The normalization result of one snippet or contract file."""

    contracts: list[NormalizedContract] = field(default_factory=list)

    def as_text(self) -> str:
        return " ".join(contract.as_text() for contract in self.contracts)

    def all_tokens(self) -> list[str]:
        tokens: list[str] = []
        for contract in self.contracts:
            for function in contract.functions:
                tokens.extend(function.tokens)
        return tokens


class Normalizer:
    """Normalize Solidity source into per-contract, per-function token streams."""

    def normalize(self, source: str) -> NormalizedUnit:
        """Parse and normalize ``source``; raises ``SolidityParseError`` if unparsable."""
        unit = parse_snippet(source)
        return self.normalize_unit(unit)

    def normalize_unit(self, unit: ast.SourceUnit) -> NormalizedUnit:
        result = NormalizedUnit()
        free_functions: list[ast.FunctionDefinition] = []
        free_statements: list[ast.Statement] = []
        for item in unit.items:
            if isinstance(item, ast.ContractDefinition):
                result.contracts.append(self._normalize_contract(item))
            elif isinstance(item, ast.FunctionDefinition):
                free_functions.append(item)
            elif isinstance(item, ast.ModifierDefinition):
                free_functions.append(ast.FunctionDefinition(
                    name=item.name, parameters=item.parameters, body=item.body,
                    line=item.line, column=item.column, code=item.code,
                ))
            elif isinstance(item, ast.Statement):
                free_statements.append(item)
        if free_functions or free_statements:
            contract = NormalizedContract(name="c")
            for function in free_functions:
                contract.functions.append(self._normalize_function(function, {}))
            if free_statements:
                scope = self._collect_scope(free_statements)
                tokens: list[str] = []
                for statement in free_statements:
                    tokens.extend(self._statement_tokens(statement, scope))
                contract.functions.append(NormalizedFunction(name="f", tokens=tokens))
            result.contracts.append(contract)
        return result

    def normalize_text(self, source: str) -> str:
        """Convenience wrapper returning the normalized token text."""
        return self.normalize(source).as_text()

    # -- contracts ---------------------------------------------------------------
    def _normalize_contract(self, contract: ast.ContractDefinition) -> NormalizedContract:
        name = "l" if contract.kind == "library" else "c"
        normalized = NormalizedContract(name=name, kind=contract.kind)
        # the contract header participates in the first function's context
        scope = self._contract_scope(contract)
        header_tokens = ["contract" if contract.kind != "library" else "library", name]
        functions: list[NormalizedFunction] = []
        for part in contract.parts:
            if isinstance(part, ast.FunctionDefinition):
                functions.append(self._normalize_function(part, scope))
            elif isinstance(part, ast.ModifierDefinition):
                synthetic = ast.FunctionDefinition(name=part.name, parameters=part.parameters,
                                                   body=part.body, code=part.code)
                normalized_function = self._normalize_function(synthetic, scope, function_label="m")
                functions.append(normalized_function)
            elif isinstance(part, ast.ContractDefinition):
                nested = self._normalize_contract(part)
                functions.extend(nested.functions)
            elif isinstance(part, ast.Statement):
                functions.append(NormalizedFunction(
                    name="f", tokens=self._statement_tokens(part, scope)))
            # state variables, events, structs, enums, using-for: ignored (Section 5.3)
        # the contract header is kept as its own sub-fingerprint segment so
        # that function-level matching is independent of the header (the
        # leading short segment visible in Figure 5 of the paper)
        normalized.functions = [NormalizedFunction(name="header", tokens=header_tokens)] + functions
        return normalized

    def _contract_scope(self, contract: ast.ContractDefinition) -> dict[str, str]:
        """State variables are *not* renamed.

        Their declarations are ignored during tokenization (Section 5.3) and
        snippets usually do not include them, so renaming references to state
        variables inside full contracts would make snippet-vs-contract
        matching asymmetric.  References to state keep their original name on
        both sides instead.
        """
        del contract
        return {}

    def _collect_scope(self, statements: list[ast.Statement]) -> dict[str, str]:
        scope: dict[str, str] = {}
        for statement in statements:
            for node in statement.walk():
                if isinstance(node, ast.VariableDeclaration) and node.name:
                    scope[node.name] = self._type_token(node.type_name)
        return scope

    # -- functions -----------------------------------------------------------------
    def _normalize_function(
        self, function: ast.FunctionDefinition, outer_scope: dict[str, str],
        function_label: str = "f",
    ) -> NormalizedFunction:
        scope = dict(outer_scope)
        for parameter in function.parameters + function.return_parameters:
            if parameter.name:
                scope[parameter.name] = self._type_token(parameter.type_name)
            elif isinstance(parameter.type_name, ast.UserDefinedTypeName) and parameter.type_name.name \
                    and parameter.type_name.name[0].islower():
                # ``function f(amount)`` — an untyped parameter: the parsed
                # "type" is actually the name, and the type defaults to uint
                scope[parameter.type_name.name] = "uint"
        if function.body is not None:
            for node in function.body.walk():
                if isinstance(node, ast.VariableDeclaration) and node.name:
                    scope[node.name] = self._type_token(node.type_name)

        tokens: list[str] = []
        if function.kind == "constructor":
            tokens.append("constructor")
        else:
            tokens.extend(["function", function_label])
        tokens.append("(")
        for index, parameter in enumerate(function.parameters):
            if index:
                tokens.append(",")
            if not parameter.name and isinstance(parameter.type_name, ast.UserDefinedTypeName) \
                    and parameter.type_name.name and parameter.type_name.name[0].islower():
                tokens.append("uint")
            else:
                tokens.append(self._type_token(parameter.type_name))
        tokens.append(")")
        if function.return_parameters:
            tokens.extend(["returns", "("])
            for index, parameter in enumerate(function.return_parameters):
                if index:
                    tokens.append(",")
                tokens.append(self._type_token(parameter.type_name))
            tokens.append(")")
        for invocation in function.modifiers:
            tokens.append("m")
        if function.body is not None:
            tokens.extend(self._statement_tokens(function.body, scope))
        return NormalizedFunction(name=function_label, tokens=tokens)

    # -- statements ------------------------------------------------------------------
    def _statement_tokens(self, statement: ast.Statement, scope: dict[str, str]) -> list[str]:
        tokens: list[str] = []
        if isinstance(statement, ast.Block):
            tokens.append("{")
            for child in statement.statements:
                tokens.extend(self._statement_tokens(child, scope))
            tokens.append("}")
            return tokens
        if isinstance(statement, ast.ExpressionStatement):
            if statement.expression is not None:
                tokens.extend(self._expression_tokens(statement.expression, scope))
            tokens.append(";")
            return tokens
        if isinstance(statement, ast.VariableDeclarationStatement):
            for declaration in statement.declarations:
                tokens.append(self._type_token(declaration.type_name))
            if statement.initial_value is not None:
                tokens.append("=")
                tokens.extend(self._expression_tokens(statement.initial_value, scope))
            tokens.append(";")
            return tokens
        if isinstance(statement, ast.IfStatement):
            tokens.extend(["if", "("])
            if statement.condition is not None:
                tokens.extend(self._expression_tokens(statement.condition, scope))
            tokens.append(")")
            if statement.true_body is not None:
                tokens.extend(self._statement_tokens(statement.true_body, scope))
            if statement.false_body is not None:
                tokens.append("else")
                tokens.extend(self._statement_tokens(statement.false_body, scope))
            return tokens
        if isinstance(statement, ast.WhileStatement):
            tokens.extend(["while", "("])
            if statement.condition is not None:
                tokens.extend(self._expression_tokens(statement.condition, scope))
            tokens.append(")")
            if statement.body is not None:
                tokens.extend(self._statement_tokens(statement.body, scope))
            return tokens
        if isinstance(statement, ast.DoWhileStatement):
            tokens.append("do")
            if statement.body is not None:
                tokens.extend(self._statement_tokens(statement.body, scope))
            tokens.extend(["while", "("])
            if statement.condition is not None:
                tokens.extend(self._expression_tokens(statement.condition, scope))
            tokens.extend([")", ";"])
            return tokens
        if isinstance(statement, ast.ForStatement):
            tokens.extend(["for", "("])
            if statement.init is not None:
                tokens.extend(self._statement_tokens(statement.init, scope))
            else:
                tokens.append(";")
            if statement.condition is not None:
                tokens.extend(self._expression_tokens(statement.condition, scope))
            tokens.append(";")
            if statement.update is not None:
                tokens.extend(self._expression_tokens(statement.update, scope))
            tokens.append(")")
            if statement.body is not None:
                tokens.extend(self._statement_tokens(statement.body, scope))
            return tokens
        if isinstance(statement, ast.ReturnStatement):
            tokens.append("return")
            if statement.expression is not None:
                tokens.extend(self._expression_tokens(statement.expression, scope))
            tokens.append(";")
            return tokens
        if isinstance(statement, ast.EmitStatement):
            tokens.append("emit")
            if statement.call is not None:
                tokens.extend(self._expression_tokens(statement.call, scope))
            tokens.append(";")
            return tokens
        if isinstance(statement, ast.RevertStatement):
            tokens.append("revert")
            if statement.call is not None:
                for argument in statement.call.arguments:
                    tokens.extend(self._expression_tokens(argument, scope))
            tokens.append(";")
            return tokens
        if isinstance(statement, ast.ThrowStatement):
            tokens.extend(["throw", ";"])
            return tokens
        if isinstance(statement, ast.BreakStatement):
            tokens.extend(["break", ";"])
            return tokens
        if isinstance(statement, ast.ContinueStatement):
            tokens.extend(["continue", ";"])
            return tokens
        if isinstance(statement, ast.PlaceholderStatement):
            tokens.extend(["_", ";"])
            return tokens
        if isinstance(statement, ast.InlineAssemblyStatement):
            tokens.extend(["assembly", "{", "}"])
            return tokens
        if isinstance(statement, ast.TryStatement):
            tokens.append("try")
            if statement.expression is not None:
                tokens.extend(self._expression_tokens(statement.expression, scope))
            if statement.body is not None:
                tokens.extend(self._statement_tokens(statement.body, scope))
            for catch in statement.catch_bodies:
                tokens.append("catch")
                tokens.extend(self._statement_tokens(catch, scope))
            return tokens
        if isinstance(statement, ast.UnparsedStatement):
            return tokens
        return tokens

    # -- expressions ---------------------------------------------------------------------
    def _expression_tokens(self, expression: ast.Expression, scope: dict[str, str]) -> list[str]:
        tokens: list[str] = []
        if isinstance(expression, ast.Identifier):
            name = expression.name
            if name in _VISIBILITY_TOKENS:
                return tokens
            tokens.append(scope.get(name, name))
            return tokens
        if isinstance(expression, ast.MemberAccess):
            if expression.base is not None:
                tokens.extend(self._expression_tokens(expression.base, scope))
            tokens.extend([".", expression.member])
            return tokens
        if isinstance(expression, ast.IndexAccess):
            if expression.base is not None:
                tokens.extend(self._expression_tokens(expression.base, scope))
            tokens.append("[")
            if expression.index is not None:
                tokens.extend(self._expression_tokens(expression.index, scope))
            tokens.append("]")
            return tokens
        if isinstance(expression, ast.FunctionCall):
            if expression.callee is not None:
                tokens.extend(self._expression_tokens(expression.callee, scope))
            if expression.call_options:
                tokens.append("{")
                for key, value in expression.call_options.items():
                    tokens.extend([key, ":"])
                    tokens.extend(self._expression_tokens(value, scope))
                tokens.append("}")
            tokens.append("(")
            for index, argument in enumerate(expression.arguments):
                if index:
                    tokens.append(",")
                tokens.extend(self._expression_tokens(argument, scope))
            tokens.append(")")
            return tokens
        if isinstance(expression, ast.Assignment):
            if expression.left is not None:
                tokens.extend(self._expression_tokens(expression.left, scope))
            tokens.append(expression.operator)
            if expression.right is not None:
                tokens.extend(self._expression_tokens(expression.right, scope))
            return tokens
        if isinstance(expression, ast.BinaryOperation):
            if expression.left is not None:
                tokens.extend(self._expression_tokens(expression.left, scope))
            tokens.append(expression.operator)
            if expression.right is not None:
                tokens.extend(self._expression_tokens(expression.right, scope))
            return tokens
        if isinstance(expression, ast.UnaryOperation):
            if expression.prefix:
                tokens.append(expression.operator)
            if expression.operand is not None:
                tokens.extend(self._expression_tokens(expression.operand, scope))
            if not expression.prefix:
                tokens.append(expression.operator)
            return tokens
        if isinstance(expression, ast.Conditional):
            if expression.condition is not None:
                tokens.extend(self._expression_tokens(expression.condition, scope))
            tokens.append("?")
            if expression.true_expression is not None:
                tokens.extend(self._expression_tokens(expression.true_expression, scope))
            tokens.append(":")
            if expression.false_expression is not None:
                tokens.extend(self._expression_tokens(expression.false_expression, scope))
            return tokens
        if isinstance(expression, ast.TupleExpression):
            tokens.append("(")
            for index, component in enumerate(expression.components):
                if index:
                    tokens.append(",")
                if component is not None:
                    tokens.extend(self._expression_tokens(component, scope))
            tokens.append(")")
            return tokens
        if isinstance(expression, ast.NumberLiteral):
            # numeric constants are intentionally left untouched (Section 5.2)
            tokens.append(expression.value)
            if expression.unit:
                tokens.append(expression.unit)
            return tokens
        if isinstance(expression, ast.StringLiteral):
            tokens.append("stringLiteral")
            return tokens
        if isinstance(expression, ast.BoolLiteral):
            tokens.append("true" if expression.value else "false")
            return tokens
        if isinstance(expression, ast.NewExpression):
            tokens.append("new")
            if expression.type_name is not None:
                tokens.append(self._type_token(expression.type_name))
            return tokens
        if isinstance(expression, ast.ElementaryTypeNameExpression):
            if expression.type_name is not None:
                tokens.append(expression.type_name.name)
            return tokens
        return tokens

    # -- types -----------------------------------------------------------------------------
    @staticmethod
    def _type_token(type_name) -> str:
        """The single token used for a declared type (default ``uint``, Section 5.2)."""
        if type_name is None:
            return "uint"
        if isinstance(type_name, ast.MappingTypeName):
            return "mapping"
        if isinstance(type_name, ast.ArrayTypeName):
            return Normalizer._type_token(type_name.base_type) + "[]"
        name = type_name.name or "uint"
        # canonicalise sized integers so uint8/uint256 still match Type-II clones
        if name.startswith("uint"):
            return "uint"
        if name.startswith("int"):
            return "int"
        if name.startswith("bytes") and name != "bytes":
            return "bytes"
        return name


def normalize_source(source: str) -> NormalizedUnit:
    """Module-level convenience wrapper around :class:`Normalizer`."""
    return Normalizer().normalize(source)


__all__ = [
    "NormalizedContract",
    "NormalizedFunction",
    "NormalizedUnit",
    "Normalizer",
    "SolidityParseError",
    "normalize_source",
]
