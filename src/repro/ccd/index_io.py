"""Serialization of an indexed CCD corpus: save, shard, and reload.

Indexing a large contract corpus is the expensive half of clone detection
(every contract is parsed, normalized, and fuzzy-hashed).  This module
persists the *result* of that work — the per-document fingerprints and
N-gram sets — so a :class:`~repro.ccd.detector.CloneDetector` can be
reloaded and answer queries **without re-parsing a single contract**.

Layout of a saved index directory::

    index.json       manifest: format version, detector configuration,
                     shard count, document/parse-failure counts
    shard-0000.pkl   pickled list of (document_id, Fingerprint, grams,
                     source content key); older three-field entries
                     (no source key) still load
    shard-0001.pkl   ...
    scores.sqlite    corpus-global (sub₁, sub₂) score memo disk tier
                     (:mod:`repro.ccd.score_memo`) — saved warm, loaded
                     warm, so a reloaded index re-scores zero known pairs

Documents are distributed over shards by the SHA-256 prefix of their
document id, so a fixed corpus always produces the same shard layout
(stable, diffable) and shards can be regenerated or distributed
independently.  All files are written atomically
(:func:`repro.core.persistence.atomic_write_bytes`), so a killed save
never leaves a torn shard behind.
"""

from __future__ import annotations

import hashlib
import warnings
from pathlib import Path
from typing import Hashable, Iterable, Optional, Union

from repro.ccd.detector import CloneDetector
from repro.ccd.matcher import SIMILARITY_BACKENDS, resolve_similarity_backend
from repro.ccd.score_memo import SCORE_MEMO_NAME, ScoreMemoTable
from repro.core.fileio import dump_json, dump_pickle, try_load_json, try_load_pickle

#: bump when the manifest or shard payload layout changes
INDEX_FORMAT_VERSION = 1

MANIFEST_NAME = "index.json"

PARSE_FAILURES_NAME = "parse-failures.pkl"


class IndexFormatError(ValueError):
    """A saved index is missing, truncated, or incompatible."""


def shard_of(document_id: Hashable, shards: int) -> int:
    """The shard a document belongs to, by SHA-256 prefix of its id.

    The first 8 hex digits of the hash are reduced modulo ``shards``;
    using a prefix of a cryptographic hash keeps shard sizes balanced for
    any id scheme (addresses, snippet ids, integers).
    """
    digest = hashlib.sha256(repr(document_id).encode("utf-8", "replace")).hexdigest()
    return int(digest[:8], 16) % shards


def _shard_path(directory: Path, index: int) -> Path:
    return directory / f"shard-{index:04d}.pkl"


def save_index(
    detector: CloneDetector,
    directory: Union[str, Path],
    shards: int = 1,
) -> dict:
    """Persist a detector's indexed corpus to ``directory``; returns the manifest.

    Only corpus state (fingerprints, N-gram sets, parse failures) is
    saved; thresholds are recorded in the manifest as defaults for
    :func:`load_index` but can be overridden at query time as usual.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if detector.similarity_backend not in SIMILARITY_BACKENDS:
        # surface the problem at save time, not at some later load
        warnings.warn(
            f"saving an index with unregistered similarity backend "
            f"{detector.similarity_backend!r}; load_index will fail unless "
            f"that name is registered in repro.ccd.matcher.SIMILARITY_BACKENDS",
            stacklevel=2)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    buckets: list[list[tuple]] = [[] for _ in range(shards)]
    for document_id, fingerprint in detector.fingerprints.items():
        buckets[shard_of(document_id, shards)].append(
            (document_id, fingerprint, detector.index.grams_for(document_id),
             detector.source_keys.get(document_id)))
    for index, bucket in enumerate(buckets):
        dump_pickle(_shard_path(directory, index), bucket)
    # a re-save with fewer shards must not leave stale shards behind
    for stale in directory.glob("shard-*.pkl"):
        try:
            if int(stale.stem.split("-", 1)[1]) >= shards:
                stale.unlink()
        except (ValueError, OSError):
            continue
    # pickled (not JSON) so document-id types and recording order survive
    dump_pickle(directory / PARSE_FAILURES_NAME, list(detector.parse_failures))
    # ship the warm pair scores with the index: the detector's memo gains
    # (or keeps) a write-through disk tier inside the index directory
    detector.score_memo.persist_to(directory / SCORE_MEMO_NAME)
    manifest = {
        "format_version": INDEX_FORMAT_VERSION,
        "score_memo": SCORE_MEMO_NAME,
        "shards": shards,
        "documents": len(detector.fingerprints),
        "parse_failures": len(detector.parse_failures),
        "configuration": {
            "ngram_size": detector.ngram_size,
            "ngram_threshold": detector.ngram_threshold,
            "similarity_threshold": detector.similarity_threshold,
            "fingerprint_block_size": detector.generator.hasher.block_size,
            "fingerprint_window": detector.generator.hasher.window,
            "similarity_backend": detector.similarity_backend,
        },
    }
    dump_json(directory / MANIFEST_NAME, manifest)
    return manifest


def append_to_index(
    detector: CloneDetector,
    directory: Union[str, Path],
    document_ids: Iterable[Hashable],
    shards: int = 1,
    remove_ids: Iterable[Hashable] = (),
) -> dict:
    """Incrementally persist newly indexed documents into a saved index.

    This is the live-ingest path of the analysis service: after
    ``detector`` (loaded from ``directory``) has indexed new documents
    in memory, only the shards those documents hash into — plus the
    manifest and the parse-failure record — are rewritten, so ingest
    cost scales with the batch, not the corpus.  ``remove_ids`` names
    documents retired from the live index (e.g. a known id re-ingested
    with now-unparsable source) whose persisted entries must go too.
    ``shards`` is only used when ``directory`` holds no index yet (a
    full :func:`save_index`).

    Returns a summary: the updated manifest plus ``appended`` (documents
    written) and ``shards_rewritten``.
    """
    directory = Path(directory)
    document_ids = list(document_ids)
    remove_ids = [document_id for document_id in remove_ids
                  if document_id not in detector.fingerprints]
    try:
        manifest = read_manifest(directory)
    except IndexFormatError:
        manifest = save_index(detector, directory, shards=shards)
        return {"manifest": manifest,
                "appended": sum(1 for document_id in document_ids
                                if document_id in detector.fingerprints),
                "shards_rewritten": manifest["shards"]}
    shard_count = manifest["shards"]
    buckets: dict[int, list[Hashable]] = {}
    for document_id in document_ids:
        if document_id not in detector.fingerprints:
            continue  # a parse failure; recorded below, never sharded
        buckets.setdefault(shard_of(document_id, shard_count), []).append(document_id)
    doomed: dict[int, set] = {}
    for document_id in remove_ids:
        doomed.setdefault(shard_of(document_id, shard_count), set()).add(document_id)
    for index in sorted(set(buckets) | set(doomed)):
        path = _shard_path(directory, index)
        bucket_ids = buckets.get(index, [])
        stale = set(bucket_ids) | doomed.get(index, set())
        bucket = [entry for entry in (try_load_pickle(path) or [])
                  if entry[0] not in stale]
        bucket.extend(
            (document_id, detector.fingerprints[document_id],
             detector.index.grams_for(document_id),
             detector.source_keys.get(document_id))
            for document_id in bucket_ids)
        dump_pickle(path, bucket)
    dump_pickle(directory / PARSE_FAILURES_NAME, list(detector.parse_failures))
    # keep (or retrofit) the score-memo tier; a no-op when the detector's
    # memo is already attached there write-through, as in the service
    detector.score_memo.persist_to(directory / SCORE_MEMO_NAME)
    manifest.setdefault("score_memo", SCORE_MEMO_NAME)
    manifest["documents"] = len(detector.fingerprints)
    manifest["parse_failures"] = len(detector.parse_failures)
    dump_json(directory / MANIFEST_NAME, manifest)
    return {"manifest": manifest,
            "appended": sum(len(bucket_ids) for bucket_ids in buckets.values()),
            "shards_rewritten": len(set(buckets) | set(doomed))}


def read_manifest(directory: Union[str, Path]) -> dict:
    """The manifest of a saved index, validated for format compatibility."""
    directory = Path(directory)
    manifest = try_load_json(directory / MANIFEST_NAME)
    if not isinstance(manifest, dict):
        raise IndexFormatError(f"no readable index manifest at {directory / MANIFEST_NAME}")
    if manifest.get("format_version") != INDEX_FORMAT_VERSION:
        raise IndexFormatError(
            f"index at {directory} has format version "
            f"{manifest.get('format_version')!r}, expected {INDEX_FORMAT_VERSION}")
    return manifest


def load_index(
    directory: Union[str, Path],
    store=None,
    strict: bool = True,
) -> CloneDetector:
    """Rebuild a :class:`~repro.ccd.detector.CloneDetector` from a saved index.

    No source is parsed: fingerprints and N-gram sets come straight out
    of the shards.  ``store`` optionally attaches a shared
    :class:`~repro.core.artifacts.ArtifactStore` (its configuration must
    match the manifest's).  With ``strict=True`` (default) an unreadable
    shard raises :class:`IndexFormatError`; with ``strict=False`` the
    affected shard's documents are silently skipped — callers can compare
    ``len(detector)`` against ``manifest['documents']`` to detect loss.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    configuration = manifest["configuration"]
    try:
        # older manifests predate the staged matcher: default backend
        backend = resolve_similarity_backend(configuration.get("similarity_backend"))
    except ValueError as error:
        # the index was saved by a detector carrying a custom
        # SimilarityBackend whose name is not in SIMILARITY_BACKENDS here;
        # store/configuration mismatches stay ValueError (caller-side)
        raise IndexFormatError(
            f"index at {directory} has an unloadable configuration: {error}") from error
    score_memo = None
    memo_name = manifest.get("score_memo")
    if memo_name and (directory / memo_name).exists():
        # reattach the saved score tier: every previously computed pair
        # score is warm (and write-through) before the first query runs
        score_memo = ScoreMemoTable(directory / memo_name)
    detector = CloneDetector(
        ngram_size=configuration["ngram_size"],
        ngram_threshold=configuration["ngram_threshold"],
        similarity_threshold=configuration["similarity_threshold"],
        fingerprint_block_size=configuration["fingerprint_block_size"],
        fingerprint_window=configuration["fingerprint_window"],
        store=store,
        similarity_backend=backend,
        score_memo=score_memo,
    )
    for index in range(manifest["shards"]):
        path = _shard_path(directory, index)
        bucket = try_load_pickle(path)
        if bucket is None:
            if strict:
                raise IndexFormatError(f"unreadable index shard {path}")
            continue
        for entry in bucket:
            document_id, fingerprint, grams = entry[0], entry[1], entry[2]
            detector.add_fingerprint(
                document_id, fingerprint, grams=grams,
                source_key=entry[3] if len(entry) > 3 else None)
    failures = try_load_pickle(directory / PARSE_FAILURES_NAME)
    if failures is None:
        if strict and manifest.get("parse_failures", 0):
            raise IndexFormatError(
                f"unreadable parse-failure record {directory / PARSE_FAILURES_NAME}")
        failures = []
    detector.parse_failures.extend(failures)
    return detector


__all__ = [
    "INDEX_FORMAT_VERSION",
    "IndexFormatError",
    "MANIFEST_NAME",
    "append_to_index",
    "load_index",
    "read_manifest",
    "save_index",
    "shard_of",
]
