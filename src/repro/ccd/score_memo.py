"""The corpus-global sub-fingerprint score memo, with an optional disk tier.

Real corpora repeat sub-fingerprints heavily: the same withdraw/transfer
function fuzzy-hashes to the same sub-fingerprint across thousands of
contracts.  The per-pair similarity δ is a pure function of the two
strings, so each distinct (sub₁, sub₂) pair only ever needs to be scored
**once per corpus lifetime** — not once per query, which is what the
per-query memo of PR 4 did and what made the resident daemon re-score
identical pairs on every job.

:class:`ScoreMemoTable` is that corpus-lifetime memo:

* an in-memory dict keyed by the canonically ordered (sub₁, sub₂) pair
  (δ is symmetric) in front — holding exact scores (``>= 0``) and, for
  pairs the banded verifier abandoned at a distance limit, negatively
  encoded *cutoff bounds* (``-U``: the true score is provably below
  ``U``), so a warm table answers even the pairs that were never scored
  exactly,
* an optional SQLite tier (``scores.sqlite``, conventionally next to the
  saved CCD index shards): scores are **written through** as they are
  computed and loaded back eagerly on open, so a restarted daemon is
  warm — a repeated job re-scores zero pairs,
* reference-counted invalidation: every indexed document *registers* its
  sub-fingerprints; when a fingerprint is retired (``release``) and a
  sub's count drops to zero, every memoized pair involving that sub is
  dropped from both tiers.  Scores are content-pure, so invalidation is
  purely a space/lifecycle bound, never a correctness requirement — which
  is also why sharing one table between backends and across jobs can
  never change reported matches.

The table is thread-safe (scheduler workers share one instance) and
picklable (the connection is dropped and reopened lazily, like the
detector's stats lock).
"""

from __future__ import annotations

import sqlite3
import threading
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

#: file name of the persisted score tier, conventionally inside a saved
#: index directory (see :mod:`repro.ccd.index_io`)
SCORE_MEMO_NAME = "scores.sqlite"

#: bump when the scores schema changes; mismatched tiers are discarded
SCORE_MEMO_FORMAT_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS scores (
    first  TEXT NOT NULL,
    second TEXT NOT NULL,
    score  REAL NOT NULL,
    PRIMARY KEY (first, second)
);
CREATE INDEX IF NOT EXISTS scores_by_second ON scores (second);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def memo_key(first: str, second: str) -> Tuple[str, str]:
    """Canonical memo key: δ is symmetric, so order the pair."""
    return (first, second) if first <= second else (second, first)


@dataclass
class ScoreMemoStats:
    """Counters of one :class:`ScoreMemoTable` (for ``/v1/stats`` and tests)."""

    #: lookups answered from the table (corpus-global memo hits)
    hits: int = 0
    #: lookups that found no memoized score (the pair was then computed)
    misses: int = 0
    #: scores written into the table (and through to disk when attached)
    stores: int = 0
    #: rows hydrated from the disk tier on open (warm-restart scores)
    warm_loaded: int = 0
    #: rows dropped by refcounted invalidation (retired fingerprints)
    invalidated: int = 0
    #: stores refused because a key's sub was already retired — the
    #: write was racing an invalidation and would have resurrected a
    #: dropped row
    blocked_stores: int = 0
    #: disk-tier write/delete failures (the memory tier keeps working)
    disk_errors: int = 0

    def as_dict(self) -> dict:
        """All counters plus the derived hit rate, as a plain dict."""
        data = {field.name: getattr(self, field.name) for field in fields(self)}
        data["hit_rate"] = self.hit_rate
        return data

    @property
    def lookups(self) -> int:
        """Total memo lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered without recomputing a distance."""
        return self.hits / self.lookups if self.lookups else 0.0


class ScoreMemoTable:
    """Corpus-lifetime (sub₁, sub₂) → δ memo, optionally persisted.

    Parameters
    ----------
    path:
        SQLite file of the disk tier; ``None`` keeps the table purely
        in-memory (the default of a standalone :class:`MatchPipeline`).
        An existing file is loaded eagerly, so every previously computed
        score is warm before the first query runs.
    """

    def __init__(self, path: Union[str, Path, None] = None):
        self._scores: Dict[Tuple[str, str], float] = {}
        #: sub-fingerprint -> keys it participates in (for invalidation)
        self._by_sub: Dict[str, set] = {}
        #: sub-fingerprint -> number of live fingerprints carrying it
        self._refs: Dict[str, int] = {}
        #: subs whose refcount hit zero — writes touching them are
        #: refused until a re-registration, so a score computed *before*
        #: an invalidation can never resurrect a dropped row *after* it
        self._retired: set = set()
        self.stats = ScoreMemoStats()
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._connection: Optional[sqlite3.Connection] = None
        if self.path is not None:
            self._open()

    # -- the disk tier --------------------------------------------------------
    def _connect(self, path: Path) -> sqlite3.Connection:
        path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(
            str(path), check_same_thread=False, isolation_level=None)
        connection.executescript(_SCHEMA)
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA busy_timeout=30000")
        return connection

    def _open(self) -> None:
        try:
            self._connection = self._connect(self.path)
        except sqlite3.DatabaseError:
            # an unreadable tier degrades to a cold one, like the artifact cache
            try:
                self.path.rename(str(self.path) + ".corrupt")
            except OSError:
                pass
            self._connection = self._connect(self.path)
        version = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'format_version'").fetchone()
        if version is None:
            self._connection.execute(
                "REPLACE INTO meta (key, value) VALUES ('format_version', ?)",
                (str(SCORE_MEMO_FORMAT_VERSION),))
        elif version[0] != str(SCORE_MEMO_FORMAT_VERSION):
            self._connection.execute("DELETE FROM scores")
            self._connection.execute(
                "REPLACE INTO meta (key, value) VALUES ('format_version', ?)",
                (str(SCORE_MEMO_FORMAT_VERSION),))
        try:
            rows = self._connection.execute(
                "SELECT first, second, score FROM scores").fetchall()
        except sqlite3.DatabaseError:
            rows = []
        for first, second, score in rows:
            self._remember((first, second), score)
        self.stats.warm_loaded += len(rows)

    def close(self) -> None:
        """Close the disk tier (in-memory lookups keep working)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    @property
    def persistent(self) -> bool:
        """Whether this table writes scores through to a disk tier."""
        return self.path is not None

    # -- pickling (MatchPipeline/CloneDetector round-trip through pickle) -----
    def __getstate__(self):
        """Drop the lock and connection; keep the memo contents and path."""
        state = dict(self.__dict__)
        del state["_lock"]
        del state["_connection"]
        return state

    def __setstate__(self, state):
        """Restore with a fresh lock; reattach the disk tier when configured."""
        self.__dict__.update(state)
        self.__dict__.setdefault("_retired", set())
        self._lock = threading.Lock()
        self._connection = None
        if self.path is not None:
            try:
                self._connection = self._connect(self.path)
            except sqlite3.DatabaseError:
                self.stats.disk_errors += 1

    # -- lookups --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._scores

    def get(self, key: Tuple[str, str]) -> Optional[float]:
        """The memoized score of a canonical pair key, or ``None``.

        Dict get is atomic under the GIL, so the hot path takes no lock;
        the counters may lose an increment under a race, the score never.
        """
        score = self._scores.get(key)
        if score is not None:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return score

    def _remember(self, key: Tuple[str, str], score: float) -> None:
        self._scores[key] = score
        self._by_sub.setdefault(key[0], set()).add(key)
        if key[1] != key[0]:
            self._by_sub.setdefault(key[1], set()).add(key)

    def __setitem__(self, key: Tuple[str, str], score: float) -> None:
        """Memoize one pair entry, writing through to the disk tier.

        Non-negative values are exact δ scores and are final (scores are
        pure).  Negative values encode a *cutoff bound*: ``-U`` records
        that the pair's true score is provably below ``U`` — the banded
        verifier abandoned the pair at a distance limit.  Bounds may be
        tightened (a larger encoded value) or upgraded to an exact score;
        they never overwrite one.

        A store whose key touches a *retired* sub (registered once, then
        fully released) is refused: a scheduler worker may compute a
        score concurrently with an ingest that retires one of its subs,
        and honoring the late write would silently resurrect a dropped
        row in both tiers.  Re-registering the sub lifts the refusal.
        """
        with self._lock:
            if key[0] in self._retired or key[1] in self._retired:
                self.stats.blocked_stores += 1
                return
            existing = self._scores.get(key)
            if existing is not None and (existing >= 0.0 or score <= existing):
                return
            self._remember(key, score)
            self.stats.stores += 1
            if self._connection is not None:
                try:
                    self._connection.execute(
                        "REPLACE INTO scores (first, second, score) "
                        "VALUES (?, ?, ?)", (key[0], key[1], score))
                except sqlite3.DatabaseError:
                    self.stats.disk_errors += 1

    # -- fingerprint lifecycle ------------------------------------------------
    def register(self, subs: Iterable[str]) -> None:
        """Count an indexed fingerprint's sub-fingerprints as live."""
        with self._lock:
            for sub in subs:
                if sub:
                    self._refs[sub] = self._refs.get(sub, 0) + 1
                    self._retired.discard(sub)

    def release(self, subs: Iterable[str]) -> None:
        """Un-count a retired fingerprint's subs; drop orphaned pair rows.

        A sub whose reference count reaches zero no longer appears in any
        indexed document, so every memoized pair involving it is deleted
        from both tiers — retired fingerprints do not leak table rows.
        """
        with self._lock:
            for sub in subs:
                if not sub:
                    continue
                count = self._refs.get(sub)
                if count is None:
                    continue
                if count > 1:
                    self._refs[sub] = count - 1
                    continue
                del self._refs[sub]
                self._retired.add(sub)
                self._invalidate_locked(sub)

    def _invalidate_locked(self, sub: str) -> None:
        for key in self._by_sub.pop(sub, ()):
            if self._scores.pop(key, None) is not None:
                self.stats.invalidated += 1
            other = key[1] if key[0] == sub else key[0]
            if other != sub:
                siblings = self._by_sub.get(other)
                if siblings is not None:
                    siblings.discard(key)
                    if not siblings:
                        del self._by_sub[other]
        if self._connection is not None:
            try:
                self._connection.execute(
                    "DELETE FROM scores WHERE first = ? OR second = ?", (sub, sub))
            except sqlite3.DatabaseError:
                self.stats.disk_errors += 1

    # -- persistence helpers (used by repro.ccd.index_io) ---------------------
    def persist_to(self, path: Union[str, Path]) -> int:
        """Attach (or dump into) a disk tier at ``path``; returns rows written.

        A purely in-memory table becomes persistent at ``path`` — every
        already-memoized score is flushed there and future scores write
        through.  A table already attached at ``path`` is a no-op (it is
        live).  Saving an index therefore ships its warm scores.
        """
        path = Path(path)
        with self._lock:
            if self._connection is not None and self.path == path:
                return 0
            if self._connection is not None:
                self._connection.close()
            self.path = path
            self._connection = self._connect(path)
            self._connection.execute(
                "REPLACE INTO meta (key, value) VALUES ('format_version', ?)",
                (str(SCORE_MEMO_FORMAT_VERSION),))
            rows = [(key[0], key[1], score)
                    for key, score in self._scores.items()]
            self._connection.executemany(
                "REPLACE INTO scores (first, second, score) VALUES (?, ?, ?)",
                rows)
            return len(rows)

    def disk_rows(self) -> int:
        """Number of rows in the disk tier (0 when purely in-memory)."""
        with self._lock:
            if self._connection is None:
                return 0
            try:
                return self._connection.execute(
                    "SELECT COUNT(*) FROM scores").fetchone()[0]
            except sqlite3.DatabaseError:
                return 0

    def as_dict(self) -> dict:
        """Stats plus size, for ``/v1/stats`` and the profile reports."""
        data = self.stats.as_dict()
        data["entries"] = len(self._scores)
        data["persistent"] = self.persistent
        return data

    def __repr__(self) -> str:
        tier = f"disk={str(self.path)!r}" if self.path is not None else "memory"
        return f"ScoreMemoTable({len(self._scores)} scores, {tier})"


__all__ = [
    "SCORE_MEMO_FORMAT_VERSION",
    "SCORE_MEMO_NAME",
    "ScoreMemoStats",
    "ScoreMemoTable",
    "memo_key",
]
