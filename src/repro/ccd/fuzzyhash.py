"""Context-triggered piecewise (fuzzy) hashing — the ssdeep substitute.

The paper condenses the normalized, tokenized source into a short
*fingerprint* using ssdeep (Section 5.4): the token stream is split into
pieces, each piece is hashed independently, and the piece hashes are
concatenated into a base-64 string.  A local modification of the source
therefore only changes a local region of the fingerprint.

This module re-implements that scheme from scratch:

* tokens are fed one by one (as the paper does with ssdeep),
* a rolling hash over the most recent tokens decides piece boundaries
  ("context triggered"),
* each piece is hashed with FNV-1a and mapped to a base-64 character,
* the concatenation of piece characters is the fuzzy hash of the token
  stream.
"""

from __future__ import annotations

from typing import Iterable

#: The base-64 alphabet used for piece hashes (same ordering as ssdeep).
BASE64_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_FNV_MASK = 0xFFFFFFFFFFFFFFFF


def _fnv1a(data: bytes, seed: int = _FNV_OFFSET) -> int:
    """64-bit FNV-1a hash."""
    value = seed
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _FNV_MASK
    return value


class _RollingHash:
    """A small rolling hash over a sliding window of token hashes.

    The window plays the role of ssdeep's 7-byte rolling hash: it provides
    the "context" that triggers piece boundaries, so identical token
    subsequences produce identical boundaries regardless of what precedes
    them far away.
    """

    def __init__(self, window: int = 4):
        self.window = window
        self._values: list[int] = []

    def update(self, token_hash: int) -> int:
        self._values.append(token_hash)
        if len(self._values) > self.window:
            self._values.pop(0)
        state = 0
        for index, value in enumerate(self._values):
            state = (state + (value >> (index % 13))) & _FNV_MASK
        return state

    def reset(self) -> None:
        self._values.clear()


class FuzzyHasher:
    """Compute context-triggered piecewise hashes of token streams.

    Parameters
    ----------
    block_size:
        Average number of tokens per piece.  Small values produce longer
        fingerprints with finer granularity; the default of 2 keeps the
        fingerprint roughly half as long as the token stream, comparable to
        the per-token feeding used in the paper.
    window:
        Size of the rolling-hash context window.
    """

    def __init__(self, block_size: int = 2, window: int = 4):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = block_size
        self.window = window

    def hash_tokens(self, tokens: Iterable[str]) -> str:
        """Return the fuzzy hash (base-64 string) of a token stream."""
        rolling = _RollingHash(self.window)
        digest_chars: list[str] = []
        piece_hash = _FNV_OFFSET
        piece_length = 0
        for token in tokens:
            token_bytes = token.encode("utf-8", errors="replace")
            token_hash = _fnv1a(token_bytes)
            piece_hash = _fnv1a(token_bytes, piece_hash)
            piece_length += 1
            context = rolling.update(token_hash)
            # trigger: the rolling context hits the block boundary, or the
            # piece grew past twice the target block size
            if context % self.block_size == self.block_size - 1 or piece_length >= 2 * self.block_size:
                digest_chars.append(BASE64_ALPHABET[piece_hash % 64])
                piece_hash = _FNV_OFFSET
                piece_length = 0
        if piece_length:
            digest_chars.append(BASE64_ALPHABET[piece_hash % 64])
        return "".join(digest_chars)

    def hash_text(self, text: str) -> str:
        """Fuzzy-hash whitespace-separated text (convenience wrapper)."""
        return self.hash_tokens(text.split())


def fuzzy_hash_tokens(tokens: Iterable[str], block_size: int = 2, window: int = 4) -> str:
    """Module-level convenience wrapper around :class:`FuzzyHasher`."""
    return FuzzyHasher(block_size=block_size, window=window).hash_tokens(tokens)
