"""Graph-pattern query engine (the Neo4j/Cypher substitute).

The paper expresses its 17 vulnerability patterns as Cypher queries with a
three-part structure (Section 4.3): a *base pattern*, disjunctive
*conditions of relevancy*, and negated-existential *mitigations*.  This
package provides the traversal primitives those queries need as a Python
API over :class:`~repro.cpg.graph.CPGGraph`:

* :class:`QueryContext` — carries the graph, an optional analysis deadline
  (the per-contract timeout of Section 6.3/6.4), and the maximal data-flow
  path length used by the phase-2 "path reduction" validation,
* :mod:`repro.query.predicates` — reusable sub-patterns (external calls,
  ether transfers, access-control guards, rollback reachability, ...).
"""

from repro.query.engine import QueryContext, QueryTimeout
from repro.query import predicates

__all__ = ["QueryContext", "QueryTimeout", "predicates"]
