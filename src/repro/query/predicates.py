"""Reusable graph sub-patterns shared by the vulnerability queries.

These helpers correspond to the recurring fragments of the paper's Cypher
queries in Appendix B: identifying external calls and ether transfers,
finding the enclosing function of a node, recognising access-control
guards, rollback reachability, and attacker-controllability of values.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cpg.graph import EdgeLabel
from repro.cpg.nodes import CPGNode
from repro.query.engine import QueryContext

#: Low-level call member names that hand control to another contract.
LOW_LEVEL_CALL_NAMES = {"call", "callcode", "delegatecall", "staticcall", "send"}

#: Member names that move ether.
ETHER_TRANSFER_NAMES = {"transfer", "send", "call", "value"}

#: Built-in global objects whose members never resolve to declarations.
BUILTIN_BASES = {"msg", "tx", "block", "abi", "this", "super", "address", "payable", "type"}

#: Well-known pure/builtin call names that never call another contract.
BUILTIN_CALLS = {
    "require", "assert", "revert", "keccak256", "sha256", "sha3", "ripemd160",
    "ecrecover", "addmod", "mulmod", "gasleft", "blockhash", "selfdestruct",
    "suicide", "push", "pop", "address", "payable", "uint", "uint256", "int",
    "bytes", "bytes32", "string", "bool", "encode", "encodePacked",
    "encodeWithSelector", "encodeWithSignature", "decode", "balanceOf", "type",
}


# ---------------------------------------------------------------------------
# Structure helpers
# ---------------------------------------------------------------------------


def enclosing_function(ctx: QueryContext, node: CPGNode) -> Optional[CPGNode]:
    """The FunctionDeclaration whose body contains ``node`` (via AST edges)."""
    current = node
    graph = ctx.graph
    seen = set()
    while current is not None and current.id not in seen:
        seen.add(current.id)
        if current.has_label("FunctionDeclaration"):
            return current
        current = graph.ast_parent(current)
    return None


def record_of(ctx: QueryContext, function: CPGNode) -> Optional[CPGNode]:
    """The RecordDeclaration (contract) a function belongs to."""
    records = ctx.graph.successors(function, EdgeLabel.RECORD_DECLARATION)
    if records:
        return records[0]
    return ctx.graph.ast_parent(function)


def functions(ctx: QueryContext, include_constructors: bool = False,
              include_internal: bool = True) -> list[CPGNode]:
    """All analysable function declarations in the graph."""
    result = []
    for function in ctx.graph.nodes_by_label("FunctionDeclaration"):
        if function.has_label("ModifierDeclaration"):
            continue
        if not include_constructors and function.has_label("ConstructorDeclaration"):
            continue
        if not include_internal and getattr(function, "visibility", "") in {"internal", "private"}:
            continue
        result.append(function)
    return result


def parameters_of(ctx: QueryContext, function: CPGNode) -> list[CPGNode]:
    params = ctx.graph.successors(function, EdgeLabel.PARAMETERS)
    return sorted(params, key=lambda parameter: getattr(parameter, "index", 0))


def fields_of_graph(ctx: QueryContext) -> list[CPGNode]:
    return ctx.graph.nodes_by_label("FieldDeclaration")


def body_nodes(ctx: QueryContext, function: CPGNode) -> list[CPGNode]:
    """All AST nodes inside the (modifier-expanded) body of ``function``."""
    result: list[CPGNode] = []
    for body in ctx.graph.successors(function, EdgeLabel.BODY):
        result.extend(ctx.graph.ast_descendants(body))
    return result


# ---------------------------------------------------------------------------
# Calls and ether transfers
# ---------------------------------------------------------------------------


def calls_in(ctx: QueryContext, function: CPGNode) -> list[CPGNode]:
    return [node for node in body_nodes(ctx, function)
            if node.has_label("CallExpression") and not node.has_label("Rollback")]


def call_base(ctx: QueryContext, call: CPGNode) -> Optional[CPGNode]:
    """The base expression the call is performed on (``x`` in ``x.call(...)``)."""
    for callee in ctx.graph.successors(call, EdgeLabel.CALLEE):
        bases = ctx.graph.successors(callee, EdgeLabel.BASE)
        if bases:
            return bases[0]
    bases = ctx.graph.successors(call, EdgeLabel.BASE)
    return bases[0] if bases else None


def base_chain_names(ctx: QueryContext, call: CPGNode) -> list[str]:
    """Local names along the BASE/CALLEE chain of a call (``a.b.c()`` -> [c, b, a])."""
    names: list[str] = []
    stack = [call]
    seen = set()
    while stack:
        node = stack.pop()
        if node.id in seen:
            continue
        seen.add(node.id)
        if node is not call and node.local_name:
            names.append(node.local_name)
        stack.extend(ctx.graph.successors(node, EdgeLabel.CALLEE))
        stack.extend(ctx.graph.successors(node, EdgeLabel.BASE))
    return names


def is_low_level_call(call: CPGNode) -> bool:
    return call.local_name.lower() in {"call", "callcode", "delegatecall", "send"}


def is_ether_transfer(ctx: QueryContext, call: CPGNode) -> bool:
    """A call that moves ether: ``transfer``/``send``/``call{value: ..}``/``call.value(..)``."""
    name = call.local_name
    if name in {"transfer", "send"}:
        return True
    if name == "value":
        return "call" in base_chain_names(ctx, call)
    if name == "call":
        if ctx.graph.successors(call, EdgeLabel.SPECIFIERS):
            return True
        # ``addr.call.value(x)()`` puts the value() call deeper in the chain
        return "value" in base_chain_names(ctx, call)
    return False


def is_external_call(ctx: QueryContext, call: CPGNode) -> bool:
    """A call that may hand over control to another contract."""
    name = call.local_name
    if name in {"transfer", "send", "call", "callcode", "delegatecall", "staticcall", "value", "gas"}:
        return True
    if name in BUILTIN_CALLS:
        return False
    # a member call on something that is not a built-in global is treated as
    # a potential external call when it does not resolve to a local function
    if ctx.graph.successors(call, EdgeLabel.INVOKES):
        return False
    base = call_base(ctx, call)
    if base is None:
        return False
    root = base
    while True:
        deeper = ctx.graph.successors(root, EdgeLabel.BASE)
        if not deeper:
            break
        root = deeper[0]
    if root.local_name in BUILTIN_BASES:
        return root.local_name in {"msg", "tx"} and call.local_name not in BUILTIN_CALLS
    return True


def call_value_expressions(ctx: QueryContext, call: CPGNode) -> list[CPGNode]:
    """Expressions providing the ether value of a transferring call."""
    name = call.local_name
    values: list[CPGNode] = []
    if name in {"transfer", "send", "value"}:
        values.extend(ctx.graph.successors(call, EdgeLabel.ARGUMENTS))
    if name in {"value", "call"} and not values:
        # old-style ``addr.call.value(x)()``: the amount sits on the inner
        # ``value(..)`` call in the callee chain
        stack = list(ctx.graph.successors(call, EdgeLabel.CALLEE))
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node.id in seen:
                continue
            seen.add(node.id)
            if node.has_label("CallExpression") and node.local_name == "value":
                values.extend(ctx.graph.successors(node, EdgeLabel.ARGUMENTS))
            stack.extend(ctx.graph.successors(node, EdgeLabel.CALLEE))
            stack.extend(ctx.graph.successors(node, EdgeLabel.BASE))
    for specifier in ctx.graph.successors(call, EdgeLabel.SPECIFIERS):
        for pair in ctx.graph.ast_children(specifier):
            if getattr(pair, "key", "") == "value":
                values.extend(ctx.graph.successors(pair, EdgeLabel.VALUE))
    return values


# ---------------------------------------------------------------------------
# Sources: msg.sender, msg.data, block values, parameters
# ---------------------------------------------------------------------------


def nodes_with_code(ctx: QueryContext, code: str) -> list[CPGNode]:
    return ctx.graph.find(code=code)


def msg_sender_nodes(ctx: QueryContext) -> list[CPGNode]:
    return [node for node in ctx.graph.nodes_by_label("MemberExpression") if node.code == "msg.sender"]


def msg_data_nodes(ctx: QueryContext) -> list[CPGNode]:
    return [node for node in ctx.graph.nodes_by_label("MemberExpression")
            if node.code in {"msg.data", "msg.data.length"}]


def block_attribute_nodes(ctx: QueryContext) -> list[CPGNode]:
    """References to miner-controlled block attributes (Listing 7)."""
    interesting_codes = {"block.timestamp", "block.number", "block.difficulty",
                         "block.coinbase", "block.prevrandao", "now"}
    result = [node for node in ctx.graph.nodes
              if node.code in interesting_codes
              and (node.has_label("MemberExpression") or node.has_label("DeclaredReferenceExpression"))]
    result.extend(call for call in ctx.graph.nodes_by_label("CallExpression")
                  if call.local_name == "blockhash")
    return result


def timestamp_nodes(ctx: QueryContext) -> list[CPGNode]:
    """References to ``now``/``block.timestamp`` (Listing 18)."""
    return [node for node in ctx.graph.nodes
            if node.code in {"now", "block.timestamp"}
            and (node.has_label("MemberExpression") or node.has_label("DeclaredReferenceExpression"))]


def flows_from_any(ctx: QueryContext, sources: Iterable[CPGNode], target: CPGNode) -> bool:
    return any(ctx.flows_to(source, target, EdgeLabel.DFG) for source in sources)


def influenced_by_parameter(ctx: QueryContext, node: CPGNode, function: Optional[CPGNode] = None) -> bool:
    """Whether a value is (transitively) influenced by a function parameter."""
    for source in ctx.flow_sources(node, EdgeLabel.DFG, include_start=True):
        if source.has_label("ParamVariableDeclaration"):
            if function is None:
                return True
            if source in parameters_of(ctx, function):
                return True
            enclosing = enclosing_parameter_function(ctx, source)
            if enclosing is not None and not enclosing.has_label("ConstructorDeclaration"):
                return True
    return False


def enclosing_parameter_function(ctx: QueryContext, parameter: CPGNode) -> Optional[CPGNode]:
    for function in ctx.graph.predecessors(parameter, EdgeLabel.PARAMETERS):
        return function
    return ctx.graph.ast_parent(parameter)


# ---------------------------------------------------------------------------
# Rollback / guard patterns (the "mitigations" of Section 4.3)
# ---------------------------------------------------------------------------


def rollbacks_in(ctx: QueryContext, function: CPGNode) -> list[CPGNode]:
    return [node for node in body_nodes(ctx, function) if node.has_label("Rollback")]


def guard_nodes_in(ctx: QueryContext, function: CPGNode) -> list[CPGNode]:
    """Branching nodes that can prevent execution: require/assert calls and ifs
    with a reverting branch."""
    guards = []
    for node in body_nodes(ctx, function):
        if node.has_label("CallExpression") and node.properties.get("reverting"):
            guards.append(node)
        elif node.has_label("IfStatement"):
            guards.append(node)
    return guards


def guard_condition_sources(ctx: QueryContext, guard: CPGNode) -> list[CPGNode]:
    """The DFG sources feeding a guard's condition."""
    conditions: list[CPGNode] = []
    if guard.has_label("IfStatement"):
        conditions = ctx.graph.successors(guard, EdgeLabel.CONDITION)
    elif guard.has_label("CallExpression"):
        conditions = ctx.graph.successors(guard, EdgeLabel.ARGUMENTS)[:1]
    sources: list[CPGNode] = []
    for condition in conditions:
        sources.extend(ctx.flow_sources(condition, EdgeLabel.DFG, include_start=True))
    return sources


def guard_dominates(ctx: QueryContext, function: CPGNode, guard: CPGNode, target: CPGNode) -> bool:
    """Approximate dominance: the guard appears before ``target`` on the EOG."""
    return ctx.eog_reaches(function, guard) and ctx.eog_reaches(guard, target)


def is_access_controlled(ctx: QueryContext, function: CPGNode, target: CPGNode) -> bool:
    """Does an access-control check protect ``target`` inside ``function``?

    The check recognises the common patterns the paper lists as mitigations:
    an equality comparison between ``msg.sender``/``tx.origin`` and
    persisted state (``require(msg.sender == owner)``, directly or via an
    expanded modifier) appearing before the sensitive operation.  Mere
    balance checks such as ``require(balances[msg.sender] >= x)`` do not
    count as access control.
    """
    for guard in guard_nodes_in(ctx, function):
        if not guard_dominates(ctx, function, guard, target):
            continue
        for source in guard_condition_sources(ctx, guard):
            if not source.has_label("BinaryOperator"):
                continue
            if getattr(source, "operator_code", "") not in {"==", "!="}:
                continue
            sides = ctx.graph.successors(source, EdgeLabel.LHS) + ctx.graph.successors(source, EdgeLabel.RHS)
            has_sender = any(side.code in {"msg.sender", "tx.origin"} for side in sides)
            if not has_sender:
                continue
            for side in sides:
                if side.code in {"msg.sender", "tx.origin"}:
                    continue
                side_sources = ctx.flow_sources(side, EdgeLabel.DFG, include_start=True)
                if any(node.has_label("FieldDeclaration") or node.has_label("Literal")
                       or (node.has_label("CallExpression") and node.local_name in
                           {"ecrecover", "owner", "hasRole", "isOwner", "getOwner"})
                       for node in side_sources):
                    return True
    return False


def has_guard_depending_on(
    ctx: QueryContext, function: CPGNode, target: CPGNode, sources: Iterable[CPGNode]
) -> bool:
    """A guard before ``target`` whose condition depends on any of ``sources``."""
    source_list = list(sources)
    for guard in guard_nodes_in(ctx, function):
        if not guard_dominates(ctx, function, guard, target):
            continue
        condition_sources = {node.id for node in guard_condition_sources(ctx, guard)}
        if any(source.id in condition_sources for source in source_list):
            return True
    return False


def writes_to_field(ctx: QueryContext, node: CPGNode) -> list[CPGNode]:
    """Fields written (via DFG) by an assignment/unary node."""
    result = []
    for target in ctx.flow_targets(node, EdgeLabel.DFG):
        if target.has_label("FieldDeclaration"):
            result.append(target)
    return result


def state_writes_in(ctx: QueryContext, function: CPGNode) -> list[tuple[CPGNode, CPGNode]]:
    """(write-node, field) pairs for all state writes inside ``function``."""
    result = []
    for node in body_nodes(ctx, function):
        if node.has_label("BinaryOperator") and getattr(node, "operator_code", "") in {
            "=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>="
        }:
            for lhs in ctx.graph.successors(node, EdgeLabel.LHS):
                for field in field_targets_of_reference(ctx, lhs):
                    result.append((node, field))
        elif node.has_label("UnaryOperator") and getattr(node, "operator_code", "") in {"++", "--", "delete"}:
            for operand in ctx.graph.successors(node, EdgeLabel.INPUT):
                for field in field_targets_of_reference(ctx, operand):
                    result.append((node, field))
    return result


def field_targets_of_reference(ctx: QueryContext, reference: CPGNode) -> list[CPGNode]:
    """Fields a (possibly nested) assignment target refers to."""
    result = []
    stack = [reference]
    seen = set()
    while stack:
        node = stack.pop()
        if node.id in seen:
            continue
        seen.add(node.id)
        for declaration in ctx.graph.successors(node, EdgeLabel.REFERS_TO):
            if declaration.has_label("FieldDeclaration"):
                result.append(declaration)
        stack.extend(ctx.graph.successors(node, EdgeLabel.BASE))
    return result


def fields_compared_to_sender(ctx: QueryContext) -> list[CPGNode]:
    """Fields that are compared against ``msg.sender`` anywhere in the unit.

    Such fields are treated as access-control state (Listing 3).
    """
    result = []
    for operator in ctx.graph.nodes_by_label("BinaryOperator"):
        if getattr(operator, "operator_code", "") not in {"==", "!="}:
            continue
        sides = ctx.graph.successors(operator, EdgeLabel.LHS) + ctx.graph.successors(operator, EdgeLabel.RHS)
        has_sender = any(side.code in {"msg.sender", "tx.origin"} for side in sides)
        if not has_sender:
            continue
        for side in sides:
            if side.code in {"msg.sender", "tx.origin"}:
                continue
            for source in ctx.flow_sources(side, EdgeLabel.DFG, include_start=True):
                if source.has_label("FieldDeclaration"):
                    result.append(source)
    return result


def solidity_pragma_version(ctx: QueryContext) -> Optional[tuple[int, int]]:
    """The ``pragma solidity`` (major, minor) recorded on the translation unit."""
    for unit in ctx.graph.nodes_by_label("TranslationUnitDeclaration"):
        version = unit.properties.get("solidity_version")
        if version:
            return version
    return None
