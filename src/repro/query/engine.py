"""Query execution context: deadlines and bounded data-flow traversal."""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.cpg.graph import CPGGraph, EdgeLabel
from repro.cpg.nodes import CPGNode


class QueryTimeout(Exception):
    """Raised when a query exceeds the per-contract analysis deadline.

    The paper's large-scale validation runs with a 1,800 second timeout per
    contract (Section 6.4); contracts that time out are retried in a second
    phase with reduced data-flow path lengths.
    """


class QueryContext:
    """Shared state for one analysis run of one translation unit.

    Parameters
    ----------
    graph:
        The code property graph under analysis.
    max_flow_depth:
        Maximal number of hops explored for ``DFG*``/``EOG*`` traversals.
        ``None`` means unbounded (phase 1); phase-2 validation passes a
        finite bound ("iteratively reduce the maximal length of data
        flows", Section 6.3).
    timeout:
        Wall-clock budget in seconds for the whole analysis run.
    """

    def __init__(
        self,
        graph: CPGGraph,
        max_flow_depth: Optional[int] = None,
        timeout: Optional[float] = None,
    ):
        self.graph = graph
        self.max_flow_depth = max_flow_depth
        self.timeout = timeout
        self._start = time.monotonic()
        self._checks = 0

    # -- deadline -------------------------------------------------------------
    def check_deadline(self) -> None:
        """Raise :class:`QueryTimeout` when the time budget is exhausted."""
        self._checks += 1
        if self.timeout is None:
            return
        if time.monotonic() - self._start > self.timeout:
            raise QueryTimeout(f"analysis exceeded {self.timeout:.1f}s")

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._start

    # -- bounded traversals ------------------------------------------------------
    def flows_to(self, source: CPGNode, target: CPGNode, *labels: str) -> bool:
        """``source -[labels*]-> target`` honouring the flow-depth bound."""
        self.check_deadline()
        labels = labels or (EdgeLabel.DFG,)
        return self.graph.is_reachable(source, target, *labels, max_depth=self.max_flow_depth)

    def flow_targets(self, source: CPGNode, *labels: str, include_start: bool = False) -> list[CPGNode]:
        """Every node reachable from ``source`` over ``labels`` edges."""
        self.check_deadline()
        labels = labels or (EdgeLabel.DFG,)
        return self.graph.reachable(source, *labels, max_depth=self.max_flow_depth,
                                    include_start=include_start)

    def flow_sources(self, target: CPGNode, *labels: str, include_start: bool = False) -> list[CPGNode]:
        """Every node that reaches ``target`` over ``labels`` edges."""
        self.check_deadline()
        labels = labels or (EdgeLabel.DFG,)
        return self.graph.reachable(target, *labels, max_depth=self.max_flow_depth,
                                    include_start=include_start, reverse=True)

    def flows_to_any(self, source: CPGNode, predicate: Callable[[CPGNode], bool], *labels: str) -> Optional[CPGNode]:
        """First node satisfying ``predicate`` reachable from ``source``."""
        self.check_deadline()
        labels = labels or (EdgeLabel.DFG,)
        path = self.graph.any_path(source, predicate, *labels, max_depth=self.max_flow_depth)
        return path[-1] if path else None

    def eog_reaches(self, source: CPGNode, target: CPGNode) -> bool:
        """Control-flow reachability including interprocedural INVOKES/RETURNS hops."""
        self.check_deadline()
        return self.graph.is_reachable(
            source, target, EdgeLabel.EOG, EdgeLabel.INVOKES, EdgeLabel.RETURNS,
            max_depth=self.max_flow_depth,
        )

    def eog_successors(self, source: CPGNode, include_start: bool = False) -> list[CPGNode]:
        self.check_deadline()
        return self.graph.reachable(
            source, EdgeLabel.EOG, EdgeLabel.INVOKES, EdgeLabel.RETURNS,
            max_depth=self.max_flow_depth, include_start=include_start,
        )

    def eog_between(self, start: CPGNode, end: CPGNode) -> list[CPGNode]:
        """Nodes on some EOG path between ``start`` and ``end`` (approximate).

        Computed as the intersection of nodes reachable forward from
        ``start`` and backward from ``end``.
        """
        self.check_deadline()
        forward = {
            node.id: node
            for node in self.graph.reachable(start, EdgeLabel.EOG, EdgeLabel.INVOKES, EdgeLabel.RETURNS,
                                             max_depth=self.max_flow_depth, include_start=True)
        }
        result = []
        for node in self.graph.reachable(end, EdgeLabel.EOG, EdgeLabel.INVOKES, EdgeLabel.RETURNS,
                                         max_depth=self.max_flow_depth, include_start=True, reverse=True):
            if node.id in forward:
                result.append(node)
        return result
