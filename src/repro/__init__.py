"""Reproduction of the IMC'24 vulnerable-code-reuse measurement study.

Layer map (see README.md for the full architecture):

* :mod:`repro.api` — the unified analysis façade: ``AnalysisSession``
  (one store + one executor), a pluggable analyzer registry, uniform
  request/result envelopes, batch ``run`` and streaming ``run_iter``,
* :mod:`repro.solidity` — tolerant Solidity lexer/parser for snippets,
* :mod:`repro.cpg` — code property graph construction and semantic passes,
* :mod:`repro.ccd` — contract clone detection (normalize → fingerprint →
  N-gram pre-filter → order-independent similarity),
* :mod:`repro.ccc` — CPG-based vulnerability checker (17 DASP queries),
* :mod:`repro.pipeline` — the end-to-end study (Figure 6), checkpointable
  and resumable, orchestrated over an analysis session,
* :mod:`repro.core` — shared parse-once artifact store (in-memory and
  disk-backed) and serial / thread / process batch executors,
* :mod:`repro.service` — the analysis service daemon: resident session
  + live CCD index, persistent SQLite job queue, stdlib HTTP API,
* :mod:`repro.cli` — the ``repro`` console script (analyze / index /
  study / cache / serve / submit / jobs),
* :mod:`repro.datasets`, :mod:`repro.baselines`, :mod:`repro.metrics`,
  :mod:`repro.evaluation`, :mod:`repro.query` — corpora, baseline tools,
  metrics, and evaluation harnesses.
"""

__version__ = "0.5.0"
