"""Table 4 — the snippet collection funnel per Q&A site.

Reproduced shape: every filtering stage (Solidity keyword filter,
parsability filter, deduplication) removes part of the snippets, and the
Ethereum Stack Exchange contributes more snippets than Stack Overflow.
"""

from repro.pipeline import SnippetCollector
from repro.pipeline.report import render_table


def test_table4_collection_funnel(benchmark, qa_corpus):
    result = benchmark.pedantic(lambda: SnippetCollector().collect(qa_corpus),
                                rounds=1, iterations=1)

    rows = [list(funnel.as_row().values()) for funnel in result.funnels.values()]
    rows.append(list(result.total_funnel.as_row().values()))
    print()
    print(render_table(["Q&A Website", "Posts", "Snippets", "Solidity", "Parsable", "Unique"],
                       rows, title="Table 4: Solidity code snippet collection funnel"))
    print(f"snippet shapes: {result.shape_distribution}")
    print(f"lines of code:  {result.line_statistics}")

    total = result.total_funnel
    assert total.snippets > total.solidity > total.parsable >= total.unique > 0
    so = result.funnels["stackoverflow"]
    ese = result.funnels["ethereum.stackexchange"]
    assert ese.unique > so.unique
    # the majority of parsed snippets contain contract or function definitions
    shapes = result.shape_distribution
    assert shapes.get("contract", 0) + shapes.get("function", 0) > shapes.get("statements", 0)
