"""Service daemon throughput — cold vs. resident, threaded vs. asyncio.

Benchmarks the analysis service (``repro.service``) end to end over real
HTTP on a loopback port, comparing the serving regimes the daemon
exists to separate:

* **cold** — every job pays the batch-world warm-up: a fresh service
  (empty artifact store, empty index), the corpus ingested, then the
  query job.  This is what each ``repro analyze`` invocation costs.
* **resident** — one long-lived daemon with the corpus ingested once;
  jobs hit the warm parse-once store and the already-loaded index.
* **frontend load** — ``BENCH_SERVICE_CLIENTS`` concurrent clients
  (default 1000) hammer ``POST /v1/jobs`` against the threaded and the
  asyncio front ends through ``tools/loadgen.py``.  The threaded stack
  soaks everything into its unbounded queue; the asyncio gateway sheds
  past ``max_pending_jobs`` with 503 + Retry-After.  The asserted
  invariant is *no hangs*: under overload the asyncio front end answers
  every request (accept or shed), never stalls one.

The terminal summary reports jobs/sec and client-observed p50/p95/p99
latency for every mode, plus the resident speedup.  The assertion is
parity: both index regimes produce byte-identical canonical envelopes.
"""

import os
import statistics
import sys
import time
from pathlib import Path

import pytest

from repro.api import canonical_json
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.service import AnalysisService, ServiceClient, ServiceConfig

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))
import loadgen  # noqa: E402  (stdlib-only helper, lives in tools/)

#: sequential submit+wait cycles sampled for the latency percentiles
LATENCY_SAMPLES = 12

#: concurrent clients of the frontend-load comparison (ISSUE floor: 1k)
FRONTEND_CLIENTS = int(os.environ.get("BENCH_SERVICE_CLIENTS", "1000"))

#: submissions each simulated client issues
FRONTEND_REQUESTS = int(os.environ.get("BENCH_SERVICE_REQUESTS", "2"))


@pytest.fixture(scope="module")
def service_corpora():
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 8, "ethereum.stackexchange": 20})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=8)
    contracts = [(contract.address, contract.source)
                 for contract in sanctuary.contracts]
    snippets = [(snippet.snippet_id, snippet.text)
                for post in qa_corpus.posts for snippet in post.snippets][:12]
    return contracts, snippets


def _service_config(tmp_path, name):
    return ServiceConfig(data_dir=str(tmp_path / name), port=0, backend="serial")


def _run_jobs(client, snippets):
    """Submit one ccd+ccc job per snippet and wait for all, FIFO."""
    latencies = []
    results = []
    for pair in snippets:
        started = time.perf_counter()
        job = client.submit([pair], analyses=["ccd", "ccc"])
        # a tight poll so the measured latency is the daemon's, not the poll's
        finished = client.wait(job["id"], timeout=120.0, poll=0.002)
        latencies.append(time.perf_counter() - started)
        results.extend(canonical_json(envelope)
                       for envelope in finished["results"])
    return latencies, results


def _percentile(latencies, fraction):
    return sorted(latencies)[max(0, int(len(latencies) * fraction) - 1)]


def _register(registry, mode, wall, latencies, jobs, **extra):
    registry[mode] = {
        "jobs_per_sec": jobs / wall,
        "p50": statistics.median(latencies),
        "p95": _percentile(latencies, 0.95),
        "p99": _percentile(latencies, 0.99),
        "jobs": jobs,
        **extra,
    }


#: canonical envelopes per mode, asserted identical between the rows
_MODE_RESULTS: dict = {}


def test_service_cold_serving(benchmark, service_corpora, tmp_path_factory,
                              service_latency_registry):
    contracts, snippets = service_corpora
    sample = snippets[:LATENCY_SAMPLES]
    tmp_path = tmp_path_factory.mktemp("svc-cold")
    counter = iter(range(1_000_000))

    def cold_run():
        # a brand-new daemon per run: cold store, cold index, full ingest
        config = _service_config(tmp_path, f"run-{next(counter)}")
        with AnalysisService(config) as service:
            client = ServiceClient(service.url)
            client.ingest(contracts)
            return _run_jobs(client, sample)

    started = time.perf_counter()
    latencies, results = benchmark.pedantic(cold_run, rounds=1, iterations=1)
    wall = time.perf_counter() - started
    _register(service_latency_registry, "cold", wall, latencies, len(sample))
    _MODE_RESULTS["cold"] = results
    assert len(results) == 2 * len(sample)


def test_service_resident_serving(benchmark, service_corpora, tmp_path_factory,
                                  service_latency_registry):
    contracts, snippets = service_corpora
    sample = snippets[:LATENCY_SAMPLES]
    tmp_path = tmp_path_factory.mktemp("svc-resident")
    with AnalysisService(_service_config(tmp_path, "daemon")) as service:
        client = ServiceClient(service.url)
        client.ingest(contracts)  # paid once, outside the benchmark
        _run_jobs(client, sample[:2])  # warm the artifact store

        def resident_run():
            return _run_jobs(client, sample)

        started = time.perf_counter()
        latencies, results = benchmark.pedantic(
            resident_run, rounds=1, iterations=1)
        wall = time.perf_counter() - started
        stats = client.stats()
    _register(service_latency_registry, "resident", wall, latencies, len(sample))
    _MODE_RESULTS["resident"] = results
    assert len(results) == 2 * len(sample)
    assert stats["index"]["documents"] == len(contracts)
    # the regimes must be indistinguishable in their (canonical) results
    if "cold" in _MODE_RESULTS:
        assert _MODE_RESULTS["cold"] == results


@pytest.mark.parametrize("frontend", ["threaded", "asyncio"])
def test_service_frontend_load(benchmark, frontend, tmp_path_factory,
                               service_latency_registry):
    """Submission throughput at FRONTEND_CLIENTS concurrent clients.

    Both front ends face the same closed-loop burst.  The threaded stack
    accepts everything into its unbounded queue; the asyncio gateway
    bounds the queue and sheds the excess with 503 + Retry-After.  The
    hard requirement under overload is *answer, never hang*.
    """
    tmp_path = tmp_path_factory.mktemp(f"svc-{frontend}")
    config = ServiceConfig(
        data_dir=str(tmp_path / "daemon"), port=0, backend="serial",
        frontend=frontend, max_connections=FRONTEND_CLIENTS + 64)
    with AnalysisService(config) as service:

        def load_run():
            return loadgen.run_load(
                service.url, clients=FRONTEND_CLIENTS,
                requests_per_client=FRONTEND_REQUESTS,
                tenant_weights=[("alpha", 3), ("beta", 1)],
                interactive_fraction=0.25, timeout=60.0)

        result = benchmark.pedantic(load_run, rounds=1, iterations=1)
    mode = f"{frontend}@{FRONTEND_CLIENTS}c"
    _register(service_latency_registry, mode, result.wall,
              result.latencies or [0.0], result.accepted,
              requests=result.requests, shed=result.shed,
              errors=result.errors, hung=result.hung,
              clients=FRONTEND_CLIENTS)
    # overload must degrade by shedding (or slowing), never by hanging
    assert result.hung == 0
    if frontend == "asyncio":
        # every request got an HTTP answer: 202 accepted or 429/503 shed
        assert result.errors == 0
        assert result.requests == FRONTEND_CLIENTS * FRONTEND_REQUESTS
        assert result.accepted + result.shed == result.requests
