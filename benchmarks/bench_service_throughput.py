"""Service daemon throughput — cold vs. resident-index serving.

Benchmarks the analysis service (``repro.service``) end to end over real
HTTP on a loopback port, comparing the two serving regimes the daemon
exists to separate:

* **cold** — every job pays the batch-world warm-up: a fresh service
  (empty artifact store, empty index), the corpus ingested, then the
  query job.  This is what each ``repro analyze`` invocation costs.
* **resident** — one long-lived daemon with the corpus ingested once;
  jobs hit the warm parse-once store and the already-loaded index.

The terminal summary reports jobs/sec and client-observed p50/p95 job
latency for both regimes, plus the resident speedup.  The assertion is
parity: both regimes produce byte-identical canonical envelopes.
"""

import statistics
import time

import pytest

from repro.api import canonical_json
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.service import AnalysisService, ServiceClient, ServiceConfig

#: sequential submit+wait cycles sampled for the latency percentiles
LATENCY_SAMPLES = 12


@pytest.fixture(scope="module")
def service_corpora():
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 8, "ethereum.stackexchange": 20})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=8)
    contracts = [(contract.address, contract.source)
                 for contract in sanctuary.contracts]
    snippets = [(snippet.snippet_id, snippet.text)
                for post in qa_corpus.posts for snippet in post.snippets][:12]
    return contracts, snippets


def _service_config(tmp_path, name):
    return ServiceConfig(data_dir=str(tmp_path / name), port=0, backend="serial")


def _run_jobs(client, snippets):
    """Submit one ccd+ccc job per snippet and wait for all, FIFO."""
    latencies = []
    results = []
    for pair in snippets:
        started = time.perf_counter()
        job = client.submit([pair], analyses=["ccd", "ccc"])
        # a tight poll so the measured latency is the daemon's, not the poll's
        finished = client.wait(job["id"], timeout=120.0, poll=0.002)
        latencies.append(time.perf_counter() - started)
        results.extend(canonical_json(envelope)
                       for envelope in finished["results"])
    return latencies, results


def _register(registry, mode, wall, latencies, jobs):
    registry[mode] = {
        "jobs_per_sec": jobs / wall,
        "p50": statistics.median(latencies),
        "p95": sorted(latencies)[max(0, int(len(latencies) * 0.95) - 1)],
        "jobs": jobs,
    }


#: canonical envelopes per mode, asserted identical between the rows
_MODE_RESULTS: dict = {}


def test_service_cold_serving(benchmark, service_corpora, tmp_path_factory,
                              service_latency_registry):
    contracts, snippets = service_corpora
    sample = snippets[:LATENCY_SAMPLES]
    tmp_path = tmp_path_factory.mktemp("svc-cold")
    counter = iter(range(1_000_000))

    def cold_run():
        # a brand-new daemon per run: cold store, cold index, full ingest
        config = _service_config(tmp_path, f"run-{next(counter)}")
        with AnalysisService(config) as service:
            client = ServiceClient(service.url)
            client.ingest(contracts)
            return _run_jobs(client, sample)

    started = time.perf_counter()
    latencies, results = benchmark.pedantic(cold_run, rounds=1, iterations=1)
    wall = time.perf_counter() - started
    _register(service_latency_registry, "cold", wall, latencies, len(sample))
    _MODE_RESULTS["cold"] = results
    assert len(results) == 2 * len(sample)


def test_service_resident_serving(benchmark, service_corpora, tmp_path_factory,
                                  service_latency_registry):
    contracts, snippets = service_corpora
    sample = snippets[:LATENCY_SAMPLES]
    tmp_path = tmp_path_factory.mktemp("svc-resident")
    with AnalysisService(_service_config(tmp_path, "daemon")) as service:
        client = ServiceClient(service.url)
        client.ingest(contracts)  # paid once, outside the benchmark
        _run_jobs(client, sample[:2])  # warm the artifact store

        def resident_run():
            return _run_jobs(client, sample)

        started = time.perf_counter()
        latencies, results = benchmark.pedantic(
            resident_run, rounds=1, iterations=1)
        wall = time.perf_counter() - started
        stats = client.stats()
    _register(service_latency_registry, "resident", wall, latencies, len(sample))
    _MODE_RESULTS["resident"] = results
    assert len(results) == 2 * len(sample)
    assert stats["index"]["documents"] == len(contracts)
    # the regimes must be indistinguishable in their (canonical) results
    if "cold" in _MODE_RESULTS:
        assert _MODE_RESULTS["cold"] == results
