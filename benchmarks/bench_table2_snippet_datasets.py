"""Table 2 — CCC on the Original vs. Functions vs. Statements datasets.

Reproduced shape: moving from full contracts to isolated functions and then
to bare statements increases precision while decreasing recall.
"""

from repro.evaluation import evaluate_ccc_on_corpus
from repro.pipeline.report import render_percentage, render_table


def test_table2_derived_snippet_datasets(benchmark, smartbugs_corpus):
    def run_all():
        return {
            "Original": evaluate_ccc_on_corpus(smartbugs_corpus, "original"),
            "Functions": evaluate_ccc_on_corpus(smartbugs_corpus, "functions"),
            "Statements": evaluate_ccc_on_corpus(smartbugs_corpus, "statements"),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name, evaluation.total_labels, evaluation.total_true_positives,
         evaluation.total_false_positives,
         render_percentage(evaluation.precision), render_percentage(evaluation.recall)]
        for name, evaluation in results.items()
    ]
    print()
    print(render_table(["Dataset", "#", "TP", "FP", "Precision", "Recall"], rows,
                       title="Table 2: CCC on Original / Functions / Statements"))

    original, functions, statements = results["Original"], results["Functions"], results["Statements"]
    assert functions.precision >= original.precision
    assert statements.precision >= functions.precision
    assert functions.recall <= original.recall
    assert statements.recall <= functions.recall
    assert statements.total_true_positives > 0
