"""Incremental re-analysis — whole-corpus re-index vs one-function delta.

The tentpole claim of the incremental subsystem: after editing **one
function** of one contract, a resident daemon re-analyzes in O(change),
not O(corpus).  Two regimes over the same logical edit:

* **full** — the batch world: a brand-new daemon re-ingests the entire
  edited corpus from scratch (every contract re-parsed, re-fingerprinted,
  re-indexed).  This is what an edit costs without incremental state.
* **incremental** — a resident daemon that already holds the base corpus
  receives the edit as a unified diff (``base_version``-guarded); the
  function-digest tier reuses every unchanged function's sub-fingerprints
  and only the edited function is re-parsed.

The asserted bar (skipped in ``BENCH_INCREMENTAL_REDUCED`` CI mode where
the corpus is tiny): the delta path is at least 5x faster, the corpus
spans at least 50 functions, and both regimes end in daemons that serve
byte-identical canonical envelopes for the same query job.
"""

import os
import time

import pytest

from repro.api import canonical_json
from repro.core.artifacts import content_key
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.service import AnalysisService, ServiceClient, ServiceConfig
from repro.service.delta import make_unified_diff
from repro.solidity.splitter import split_source

#: CI smoke mode: a corpus small enough for the bench-smoke job
REDUCED = bool(os.environ.get("BENCH_INCREMENTAL_REDUCED"))

INDEPENDENT_CONTRACTS = 6 if REDUCED else 30

#: the contract whose ``deposit`` function the benchmark edits
TARGET_ID = "0xbench-incremental-target"

TARGET_SOURCE = """pragma solidity ^0.4.24;
contract BenchTarget {
    mapping(address => uint) balances;
    uint public total;
    function deposit() public payable {
        balances[msg.sender] += msg.value;
        total += msg.value;
    }
    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.transfer(amount);
        balances[msg.sender] -= amount;
        total -= amount;
    }
    function balanceOf(address who) public view returns (uint) {
        return balances[who];
    }
}
"""

#: the one-function edit: a single statement changed inside ``deposit``
EDITED_SOURCE = TARGET_SOURCE.replace(
    "total += msg.value;", "total += msg.value + 0;")


@pytest.fixture(scope="module")
def incremental_corpus():
    """``(base_contracts, edited_contracts, total_functions)``."""
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 4, "ethereum.stackexchange": 10})
    sanctuary = generate_sanctuary(
        qa_corpus, seed=11, independent_contracts=INDEPENDENT_CONTRACTS)
    base = [(contract.address, contract.source)
            for contract in sanctuary.contracts]
    base.append((TARGET_ID, TARGET_SOURCE))
    edited = [(doc_id, EDITED_SOURCE if doc_id == TARGET_ID else source)
              for doc_id, source in base]
    functions = 0
    for _, source in base:
        split = split_source(source)
        if split is not None:
            functions += len(list(split.spans))
    return base, edited, functions


def _config(tmp_path, name):
    return ServiceConfig(data_dir=str(tmp_path / name), port=0, backend="serial")


def _query_envelopes(client):
    """Canonical envelopes of one fixed ccd+ccc job (the parity probe)."""
    job = client.submit([["probe", EDITED_SOURCE]], analyses=["ccd", "ccc"])
    finished = client.wait(job["id"], timeout=120.0, poll=0.002)
    return [canonical_json(envelope) for envelope in finished["results"]]


#: mode -> parity-probe envelopes, asserted identical across regimes
_MODE_ENVELOPES: dict = {}


def test_full_reanalysis(benchmark, incremental_corpus, tmp_path_factory,
                         incremental_registry):
    base, edited, functions = incremental_corpus
    tmp_path = tmp_path_factory.mktemp("inc-full")
    counter = iter(range(1_000_000))
    if not REDUCED:
        assert functions >= 50  # the ISSUE floor: edit 1 of >= 50 functions

    def full_run():
        # the batch world: the edit costs a cold re-index of everything
        with AnalysisService(_config(tmp_path, f"run-{next(counter)}")) as svc:
            client = ServiceClient(svc.url)
            summary = client.ingest(edited)
            return client, summary, _query_envelopes(client)

    started = time.perf_counter()
    _, summary, envelopes = benchmark.pedantic(full_run, rounds=1, iterations=1)
    wall = time.perf_counter() - started
    assert summary["ingested"] == len(edited)
    incremental_registry["full"] = {
        "wall": wall, "functions": functions, "functions_changed": functions,
        "documents": len(edited),
    }
    _MODE_ENVELOPES["full"] = envelopes


def test_incremental_reanalysis(benchmark, incremental_corpus,
                                tmp_path_factory, incremental_registry):
    base, edited, functions = incremental_corpus
    tmp_path = tmp_path_factory.mktemp("inc-delta")
    diff = make_unified_diff(TARGET_SOURCE, EDITED_SOURCE)
    with AnalysisService(_config(tmp_path, "daemon")) as svc:
        client = ServiceClient(svc.url)
        client.ingest(base)  # the resident state, paid once outside the timer
        before = client.stats()["incremental"]  # counters are cumulative

        def delta_run():
            return client.ingest_delta(
                TARGET_ID, diff=diff,
                base_version=content_key(TARGET_SOURCE))

        started = time.perf_counter()
        summary = benchmark.pedantic(delta_run, rounds=1, iterations=1)
        wall = time.perf_counter() - started
        after = client.stats()["incremental"]
        envelopes = _query_envelopes(client)
    assert summary["ingested"] == 1
    # the edit re-parsed exactly one function; everything else was reused
    stats = {key: after[key] - before.get(key, 0)
             for key in ("function_hits", "function_misses", "function_parses",
                         "delta_assemblies", "delta_fallbacks")}
    assert stats["delta_assemblies"] >= 1
    assert stats["delta_fallbacks"] == 0
    assert stats["function_parses"] <= 1
    incremental_registry["incremental"] = {
        "wall": wall, "functions": functions, "functions_changed": 1,
        "documents": len(base), **stats,
    }
    _MODE_ENVELOPES["incremental"] = envelopes
    # both regimes hold the same logical corpus: identical probe envelopes
    if "full" in _MODE_ENVELOPES:
        assert _MODE_ENVELOPES["full"] == envelopes
    if not REDUCED and "full" in incremental_registry:
        speedup = incremental_registry["full"]["wall"] / max(wall, 1e-9)
        assert speedup >= 5.0  # the ISSUE bar for the resident delta path
