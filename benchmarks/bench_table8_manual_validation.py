"""Table 8 — (simulated) manual validation of flagged snippet/contract pairs.

The generator ground truth plays the role of the human reviewer.  The
reproduced shape: the majority of sampled pairings are genuine (vulnerable
snippet, true clone, vulnerable contract), with a tail of false clones and
false-positive snippets.
"""

from repro.evaluation import simulate_manual_validation
from repro.pipeline.report import render_table


def test_table8_manual_validation(benchmark, study_result, sanctuary):
    snippets = study_result.collection.snippets

    table = benchmark.pedantic(
        lambda: simulate_manual_validation(
            study_result, snippets, sanctuary.contracts,
            sanctuary.ground_truth_embeddings, sample_size=100),
        rounds=1, iterations=1)

    counts = table.counts()
    rows = [
        ["True clones", "Snippet TP", counts["true_clone_snippet_tp_contract_tp"],
         counts["true_clone_snippet_tp_contract_fp"]],
        ["True clones", "Snippet FP", counts["true_clone_snippet_fp_contract_tp"],
         counts["true_clone_snippet_fp_contract_fp"]],
        ["False clones", "Snippet TP", counts["false_clone_snippet_tp_contract_tp"],
         counts["false_clone_snippet_tp_contract_fp"]],
        ["False clones", "Snippet FP", counts["false_clone_snippet_fp_contract_tp"],
         counts["false_clone_snippet_fp_contract_fp"]],
    ]
    print()
    print(render_table(["Clone relation", "Snippet verdict", "Contract TP", "Contract FP"],
                       rows, title=f"Table 8: manual validation of {table.sample_size} sampled pairings"))

    assert table.sample_size > 0
    # the dominant cell is the fully-confirmed one (48/100 in the paper)
    assert table.confirmed_pairings == max(counts.values())
    assert table.confirmed_pairings >= table.sample_size * 0.3
