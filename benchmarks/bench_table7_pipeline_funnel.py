"""Table 7 — the vulnerable-code-reuse pipeline funnel.

Reproduced shape: of all unique snippets a sizeable fraction is vulnerable;
only a fraction of those is found in deployed contracts; most candidate
contracts that embed a vulnerable snippet are validated as vulnerable
because they did not add a mitigation.
"""

from repro.pipeline.report import render_table


def test_table7_pipeline_funnel(benchmark, study_result):
    funnel = benchmark.pedantic(study_result.funnel, rounds=1, iterations=1)

    rows = [
        ["Snippets", "Unique", funnel["unique_snippets"]],
        ["Snippets", "Vulnerable", funnel["vulnerable_snippets"]],
        ["Snippets", "Contained in contracts", funnel["vulnerable_snippets_in_contracts"]],
        ["Snippets", "Posted before deployment (disseminator)", funnel["disseminator_snippets"]],
        ["Snippets", "Source snippets", funnel["source_snippets"]],
        ["Contracts", "Containing vulnerable snippets", funnel["candidate_contracts"]],
        ["Contracts", "Unique", funnel["unique_candidate_contracts"]],
        ["Validation", "Successfully analysed contracts", funnel["validated_contracts"]],
        ["Validation", "Vulnerable contracts", funnel["vulnerable_contracts"]],
        ["Validation", "Vulnerable snippets in vulnerable contracts",
         funnel["vulnerable_snippets_confirmed"]],
    ]
    print()
    print(render_table(["Stage", "Quantity", "Count"], rows,
                       title="Table 7: vulnerable snippets and contracts across the pipeline"))

    assert funnel["unique_snippets"] >= funnel["vulnerable_snippets"] > 0
    assert funnel["vulnerable_snippets"] >= funnel["vulnerable_snippets_in_contracts"]
    assert funnel["vulnerable_snippets_in_contracts"] >= funnel["disseminator_snippets"]
    assert funnel["disseminator_snippets"] >= funnel["source_snippets"]
    assert funnel["validated_contracts"] >= funnel["vulnerable_contracts"]
    # the headline result: vulnerable snippet reuse is present in deployed contracts
    assert funnel["vulnerable_contracts"] > 0
    assert funnel["vulnerable_snippets_confirmed"] > 0
