"""Figure 5 — fingerprints of two similar snippets remain similar.

The two contracts of Figure 5 share the withdraw logic; one adds an
ownership check and swaps the declaration order.  The reproduced property:
their fingerprints are far more similar to each other than to an unrelated
contract, and a local edit only changes a local part of the fingerprint.
"""

from repro.ccd import FingerprintGenerator, edit_distance, order_independent_similarity

SAFE = """
contract Safe {
    address owner;
    constructor() { owner = msg.sender; }
    function safeWithdraw(uint amount) {
        require(msg.sender == owner);
        msg.sender.transfer(amount);
    }
}
"""

UNSAFE = """
contract Unsafe {
    function unsafeWithdraw(uint value) {
        msg.sender.transfer(value);
    }
    address deployer;
    constructor() { deployer = msg.sender; }
}
"""

UNRELATED = """
contract Voting {
    mapping(address => bool) voted;
    mapping(uint => uint) tally;
    function vote(uint option) public {
        require(!voted[msg.sender]);
        voted[msg.sender] = true;
        tally[option] += 1;
    }
}
"""


def test_fig5_similar_snippets_similar_fingerprints(benchmark):
    generator = FingerprintGenerator()

    def fingerprints():
        return (generator.from_source(SAFE), generator.from_source(UNSAFE),
                generator.from_source(UNRELATED))

    safe, unsafe, unrelated = benchmark.pedantic(fingerprints, rounds=1, iterations=1)
    print()
    print(f"fingerprint(Safe)     = {safe.text}")
    print(f"fingerprint(Unsafe)   = {unsafe.text}")
    print(f"fingerprint(Voting)   = {unrelated.text}")

    related_score = order_independent_similarity(unsafe, safe)
    unrelated_score = order_independent_similarity(unsafe, unrelated)
    print(f"similarity(Unsafe, Safe)   = {related_score:.1f}")
    print(f"similarity(Unsafe, Voting) = {unrelated_score:.1f}")
    assert related_score > unrelated_score + 20

    # a local edit (adding one statement) only changes part of the fingerprint
    edited = UNSAFE.replace("msg.sender.transfer(value);",
                            "lastCaller = msg.sender;\n        msg.sender.transfer(value);")
    edited_fingerprint = generator.from_source(edited)
    distance = edit_distance(unsafe.text, edited_fingerprint.text)
    assert 0 < distance < len(unsafe.text)
