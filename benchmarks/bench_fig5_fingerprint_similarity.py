"""Figure 5 — fingerprint similarity, and the staged matcher's hot path.

Part one reproduces the paper's Figure 5 property: two contracts sharing
the withdraw logic have far more similar fingerprints than an unrelated
contract, and a local edit only changes a local part of the fingerprint.

Part two benchmarks the system's hottest loop — Section 5.5 clone
verification — on a synthetic fingerprint corpus: the ``bounded``
similarity backend (banded edit distance, length/mean bounds, pair memo)
and the ``myers`` backend (same pruning, bit-parallel distance kernel)
against the naive ``exact`` reference, asserting byte-identical matches.
Per-backend stage timings and the dropped-candidate statistics (pruned by
length bucket, abandoned by mean bound, ...) are registered with the
``matcher_backend_registry`` fixture, reported in the terminal summary,
and written to ``BENCH_fig5.json`` for the perf trajectory.

Set ``BENCH_FIG5_REDUCED=1`` to shrink the corpus (the CI smoke mode that
guards the hot path against regressions without burning minutes).
"""

import os
import random
import time

from repro.ccd import FingerprintGenerator, edit_distance, order_independent_similarity
from repro.ccd.fingerprint import Fingerprint
from repro.ccd.fuzzyhash import BASE64_ALPHABET
from repro.ccd.matcher import MatchPipeline
from repro.ccd.ngram_index import NGramIndex

#: reduced mode: a few seconds instead of a minute (used by the CI smoke step)
REDUCED = os.environ.get("BENCH_FIG5_REDUCED", "") not in ("", "0")

SAFE = """
contract Safe {
    address owner;
    constructor() { owner = msg.sender; }
    function safeWithdraw(uint amount) {
        require(msg.sender == owner);
        msg.sender.transfer(amount);
    }
}
"""

UNSAFE = """
contract Unsafe {
    function unsafeWithdraw(uint value) {
        msg.sender.transfer(value);
    }
    address deployer;
    constructor() { deployer = msg.sender; }
}
"""

UNRELATED = """
contract Voting {
    mapping(address => bool) voted;
    mapping(uint => uint) tally;
    function vote(uint option) public {
        require(!voted[msg.sender]);
        voted[msg.sender] = true;
        tally[option] += 1;
    }
}
"""


def test_fig5_similar_snippets_similar_fingerprints(benchmark):
    generator = FingerprintGenerator()

    def fingerprints():
        return (generator.from_source(SAFE), generator.from_source(UNSAFE),
                generator.from_source(UNRELATED))

    safe, unsafe, unrelated = benchmark.pedantic(fingerprints, rounds=1, iterations=1)
    print()
    print(f"fingerprint(Safe)     = {safe.text}")
    print(f"fingerprint(Unsafe)   = {unsafe.text}")
    print(f"fingerprint(Voting)   = {unrelated.text}")

    related_score = order_independent_similarity(unsafe, safe)
    unrelated_score = order_independent_similarity(unsafe, unrelated)
    print(f"similarity(Unsafe, Safe)   = {related_score:.1f}")
    print(f"similarity(Unsafe, Voting) = {unrelated_score:.1f}")
    assert related_score > unrelated_score + 20

    # a local edit (adding one statement) only changes part of the fingerprint
    edited = UNSAFE.replace("msg.sender.transfer(value);",
                            "lastCaller = msg.sender;\n        msg.sender.transfer(value);")
    edited_fingerprint = generator.from_source(edited)
    distance = edit_distance(unsafe.text, edited_fingerprint.text)
    assert 0 < distance < len(unsafe.text)


# ---------------------------------------------------------------------------
# the verification hot path: exact vs bounded similarity backend
# ---------------------------------------------------------------------------

def _random_sub(rng, low=8, high=48):
    return "".join(rng.choice(BASE64_ALPHABET) for _ in range(rng.randint(low, high)))


def _mutate(rng, sub, max_edits=2):
    sub = list(sub)
    for _ in range(rng.randint(0, max_edits)):
        position = rng.randrange(len(sub))
        operation = rng.random()
        if operation < 0.5:
            sub[position] = rng.choice(BASE64_ALPHABET)
        elif operation < 0.75:
            del sub[position]
        else:
            sub.insert(position, rng.choice(BASE64_ALPHABET))
    return "".join(sub)


def _matcher_workload(seed=42, documents=None, queries=None):
    """A clone-rich synthetic fingerprint corpus plus query snippets.

    Sub-fingerprints are drawn from a shared pool with light mutations —
    the repetition structure real corpora have (which is what the pair
    memo and the pruning bounds exploit).  Queries are mutated slices of
    corpus documents, so most hit the index with genuine near-clones.
    """
    documents = documents if documents is not None else (80 if REDUCED else 300)
    queries = queries if queries is not None else (12 if REDUCED else 40)
    rng = random.Random(seed)
    pool = [_random_sub(rng) for _ in range(40)]
    fingerprints = {}
    for index in range(documents):
        if index % 10 == 0:
            # stub contracts: a single short function sliced out of a pool
            # sub — too few n-grams to ever reach η against a real query,
            # which is what the length-bucket prune drops
            base = rng.choice(pool)
            fingerprints[f"doc{index}"] = Fingerprint.parse(base[:rng.randint(6, 12)])
            continue
        subs = [_mutate(rng, rng.choice(pool)) if rng.random() < 0.7
                else _random_sub(rng)
                for _ in range(rng.randint(4, 12))]
        fingerprints[f"doc{index}"] = Fingerprint.parse(".".join(subs))
    ngram_index = NGramIndex(ngram_size=3)
    for document_id, fingerprint in fingerprints.items():
        ngram_index.add(document_id, fingerprint.text)
    query_fingerprints = []
    full_documents = [document_id for document_id, fingerprint in fingerprints.items()
                      if len(fingerprint.sub_fingerprints) > 1]
    for _ in range(queries):
        base = fingerprints[rng.choice(full_documents)].sub_fingerprints
        take = rng.sample(base, k=min(len(base), rng.randint(2, 5)))
        query_fingerprints.append(
            Fingerprint.parse(".".join(_mutate(rng, sub, 1) for sub in take)))
    return ngram_index, fingerprints, query_fingerprints


def test_fig5_staged_matcher_verification(benchmark, matcher_backend_registry):
    """Bounded/myers vs exact verification: identical matches, 3x+ faster each."""
    ngram_index, fingerprints, query_fingerprints = _matcher_workload()
    eta, epsilon = 0.5, 70.0  # the paper's default η=0.5, ε=0.7

    def run_backend(backend):
        # each backend gets a fresh pipeline — and therefore a fresh,
        # cold corpus-global score memo, so the comparison is fair
        pipeline = MatchPipeline(ngram_index, fingerprints, backend=backend)
        started = time.perf_counter()
        matches = [pipeline.match(query, eta, epsilon)
                   for query in query_fingerprints]
        return matches, time.perf_counter() - started, pipeline.stats

    # untimed warm-up on a few queries so every backend is measured with
    # hot interpreter caches (CPython's adaptive specialization and the
    # myers Peq mask cache both settle after the first executions)
    for backend in ("exact", "bounded", "myers"):
        warmup = MatchPipeline(ngram_index, fingerprints, backend=backend)
        for query in query_fingerprints[:3]:
            warmup.match(query, eta, epsilon)

    exact_matches, exact_wall, exact_stats = run_backend("exact")
    bounded_matches, bounded_wall, bounded_stats = run_backend("bounded")

    def myers_run():
        return run_backend("myers")

    myers_matches, myers_wall, myers_stats = benchmark.pedantic(
        myers_run, rounds=1, iterations=1)

    # parity: both pruned backends must report byte-identical clones
    assert bounded_matches == exact_matches
    assert myers_matches == exact_matches

    matcher_backend_registry["exact"] = {"wall": exact_wall, "stats": exact_stats}
    matcher_backend_registry["bounded"] = {"wall": bounded_wall, "stats": bounded_stats}
    matcher_backend_registry["myers"] = {"wall": myers_wall, "stats": myers_stats}

    # per-backend stage timings and the dropped-candidate statistics are
    # printed once, by the conftest terminal-summary section fed from the
    # registry rows above; only the headline lands here
    speedup = exact_stats.verify_seconds / max(bounded_stats.verify_seconds, 1e-9)
    myers_speedup = bounded_stats.verify_seconds / max(myers_stats.verify_seconds, 1e-9)
    print()
    print(f"corpus: {len(fingerprints)} documents, {len(query_fingerprints)} queries "
          f"(eta={eta}, epsilon={epsilon / 100.0}); "
          f"bounded verification {speedup:.1f}x faster than exact, "
          f"myers {myers_speedup:.1f}x faster than bounded, identical matches")
    # the acceptance bars of the staged matcher (PR 4) and the bit-parallel
    # kernel (PR 6): the deterministic counter relations always hold; the
    # wall-clock ratios are only asserted in full mode, where the
    # denominators are immune to scheduler jitter (the reduced CI smoke
    # run takes single-digit ms)
    assert exact_stats.pairs_scored >= 3 * bounded_stats.pairs_scored
    # myers shares every pruning decision with bounded — same pairs, same
    # cutoffs — and additionally reports the bit-parallel work it did
    assert myers_stats.pairs_scored == bounded_stats.pairs_scored
    assert myers_stats.pairs_cutoff == bounded_stats.pairs_cutoff
    assert myers_stats.myers_words > 0
    if not REDUCED:
        assert speedup >= 3.0
        assert myers_speedup >= 3.0
