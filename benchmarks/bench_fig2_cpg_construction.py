"""Figure 2 / Figure 3 — CPG construction for snippets and contracts.

Benchmarks the translation of Solidity source into a code property graph
and checks the structure shown in Figure 2: for ``if (msg.sender == owner)``
the operands are evaluated before ``==`` (EOG), both operands flow into the
comparison (DFG), and the comparison feeds the branching IF node.
"""

from repro.cpg import build_cpg
from repro.cpg.graph import EdgeLabel

FIGURE2_SNIPPET = "if (msg.sender == owner) { }"

WALLET = """
pragma solidity ^0.4.24;
contract Wallet {
    address owner;
    mapping(address => uint) balances;
    constructor() public { owner = msg.sender; }
    function deposit() public payable { balances[msg.sender] += msg.value; }
    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.call.value(amount)();
        balances[msg.sender] -= amount;
    }
    modifier onlyOwner() { require(msg.sender == owner); _; }
    function kill() public onlyOwner { selfdestruct(msg.sender); }
}
"""


def test_fig2_cpg_of_branching_snippet(benchmark):
    graph = benchmark(build_cpg, FIGURE2_SNIPPET)

    comparison = next(op for op in graph.nodes_by_label("BinaryOperator") if op.operator_code == "==")
    if_statement = graph.nodes_by_label("IfStatement")[0]
    sender = next(n for n in graph.nodes_by_label("MemberExpression") if n.code == "msg.sender")
    owner = next(n for n in graph.nodes_by_label("DeclaredReferenceExpression") if n.name == "owner")

    # EOG: msg.sender -> owner -> == -> IF (green edges of Figure 2)
    assert graph.is_reachable(sender, owner, EdgeLabel.EOG)
    assert graph.is_reachable(owner, comparison, EdgeLabel.EOG)
    assert graph.has_edge(comparison, if_statement, EdgeLabel.EOG)
    # DFG: both references feed ==, which feeds the IF (blue edges)
    assert graph.has_edge(sender, comparison, EdgeLabel.DFG)
    assert graph.has_edge(owner, comparison, EdgeLabel.DFG)
    assert graph.has_edge(comparison, if_statement, EdgeLabel.DFG)
    # AST: LHS/RHS/CONDITION structure (grey edges)
    assert sender in graph.successors(comparison, EdgeLabel.LHS)
    assert owner in graph.successors(comparison, EdgeLabel.RHS)
    assert comparison in graph.successors(if_statement, EdgeLabel.CONDITION)


def test_fig3_cpg_of_full_contract(benchmark):
    graph = benchmark(build_cpg, WALLET, snippet=False)
    stats = graph.statistics()
    assert stats["nodes"] > 40
    assert stats["edges_eog"] > 20
    assert stats["edges_dfg"] > 20
    assert graph.nodes_by_label("Rollback")
