"""Table 1 — CCC vs. other analysis tools on the labelled corpus.

Prints per-category TP/FP for CCC and the SmartCheck-style lexical baseline
plus overall precision/recall.  The reproduced shape: CCC reports findings
in every category and achieves the highest recall, while the lexical
baseline covers few categories with high precision but low recall.
"""

from repro.evaluation import evaluate_baseline_on_corpus, evaluate_ccc_on_corpus
from repro.pipeline.report import render_percentage, render_table


def test_table1_ccc_vs_baseline(benchmark, smartbugs_corpus):
    ccc = benchmark.pedantic(
        lambda: evaluate_ccc_on_corpus(smartbugs_corpus, "original"),
        rounds=1, iterations=1)
    baseline = evaluate_baseline_on_corpus(smartbugs_corpus, "original")

    rows = []
    baseline_by_category = {result.category: result for result in baseline.categories.values()}
    for result in sorted(ccc.categories.values(), key=lambda item: item.category.value):
        other = baseline_by_category.get(result.category)
        rows.append([
            result.category.value, result.labels,
            result.true_positives, result.false_positives,
            other.true_positives if other else 0, other.false_positives if other else 0,
        ])
    rows.append(["Total", ccc.total_labels,
                 ccc.total_true_positives, ccc.total_false_positives,
                 baseline.total_true_positives, baseline.total_false_positives])
    print()
    print(render_table(
        ["Vulnerability Category", "#", "CCC TP", "CCC FP", "Baseline TP", "Baseline FP"],
        rows, title="Table 1: CCC vs lexical baseline (SmartBugs-style corpus)"))
    print(f"CCC       precision={render_percentage(ccc.precision)} recall={render_percentage(ccc.recall)} "
          f"categories-covered={ccc.covered_categories}/9")
    print(f"Baseline  precision={render_percentage(baseline.precision)} recall={render_percentage(baseline.recall)} "
          f"categories-covered={baseline.covered_categories}/9")

    # the paper's comparison shape
    assert ccc.total_true_positives > baseline.total_true_positives
    assert ccc.covered_categories >= 8
    assert ccc.covered_categories > baseline.covered_categories
    assert ccc.precision > 0.75
