"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The corpora
are synthetic (see DESIGN.md) and deliberately scaled so that the complete
benchmark suite runs in a few minutes on a laptop; the *shape* of each
result (who wins, which direction metrics move) is what is reproduced.
"""

from __future__ import annotations

import pytest

from repro.datasets.honeypots import generate_honeypot_corpus
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.smartbugs import generate_smartbugs_corpus
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline import StudyConfiguration, VulnerableCodeReuseStudy


@pytest.fixture(scope="session")
def smartbugs_corpus():
    """The full-scale labelled corpus (204 labels, as in Table 1)."""
    return generate_smartbugs_corpus(seed=13)


@pytest.fixture(scope="session")
def honeypot_corpus():
    """The honeypot clone corpus (Table 3 substrate)."""
    return generate_honeypot_corpus(seed=7)


@pytest.fixture(scope="session")
def qa_corpus():
    return generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 60, "ethereum.stackexchange": 150})


@pytest.fixture(scope="session")
def sanctuary(qa_corpus):
    return generate_sanctuary(qa_corpus, seed=11, independent_contracts=60)


@pytest.fixture(scope="session")
def study_result(qa_corpus, sanctuary):
    """One full study run shared by the Table 5-8 benchmarks."""
    study = VulnerableCodeReuseStudy(StudyConfiguration(
        validation_timeout_seconds=20, snippet_analysis_timeout_seconds=15))
    return study.run(qa_corpus, sanctuary.contracts)
