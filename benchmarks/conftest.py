"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The corpora
are synthetic (see DESIGN.md) and deliberately scaled so that the complete
benchmark suite runs in a few minutes on a laptop; the *shape* of each
result (who wins, which direction metrics move) is what is reproduced.

Benchmarks that route work through the shared analysis core can register
their :class:`~repro.core.artifacts.ArtifactStore` statistics with the
session-scoped ``artifact_stats_registry`` fixture; the aggregate
artifact-cache hit rate is reported in the terminal summary.

The terminal summary also writes machine-readable perf-trajectory
artifacts — ``BENCH_fig5.json`` (staged-matcher backends),
``BENCH_service.json`` (cold vs resident serving), and
``BENCH_incremental.json`` (full vs delta re-analysis) — into
``$BENCH_ARTIFACTS_DIR`` (default: the repository root, so the committed
artifacts refresh in place), so CI uploads and future re-anchors can
track the speed curve across PRs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.artifacts import ArtifactStore
from repro.datasets.honeypots import generate_honeypot_corpus
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.smartbugs import generate_smartbugs_corpus
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline import StudyConfiguration, VulnerableCodeReuseStudy
from repro.pipeline.report import render_cache_stats

#: (label, ArtifactStoreStats) pairs registered during the benchmark session
_ARTIFACT_STATS: list[tuple[str, object]] = []

#: mode -> {"wall": s, "peak": bytes} rows of the batch-vs-streaming
#: session comparison (bench_fig6), reported with their delta below
_SESSION_MODES: dict[str, dict] = {}

#: backend name -> {"wall": s, "stats": MatchStats} rows of the staged
#: clone-matcher comparison (bench_fig5), reported with pruning counters
#: and the exact-vs-bounded verification speedup below
_MATCHER_BACKENDS: dict[str, dict] = {}

#: mode -> {"jobs_per_sec", "p50", "p95", "p99", "jobs", ...} rows of the
#: service daemon benchmark (bench_service_throughput): cold vs resident
#: index serving, plus the threaded-vs-asyncio frontend load comparison
_SERVICE_LATENCIES: dict[str, dict] = {}

#: mode -> {"wall": s, ...} rows of the incremental re-analysis benchmark
#: (bench_incremental): whole-corpus re-ingest vs one-function delta
_INCREMENTAL_MODES: dict[str, dict] = {}

#: rows of the workload-engine sweep benchmark (bench_table9_fig9):
#: grid size, chunks/sec, and pause+resume overhead vs uninterrupted
_SWEEP_ROWS: dict[str, dict] = {}


@pytest.fixture(scope="session")
def artifact_stats_registry():
    """Register ``(label, store.stats)`` pairs for the session cache report."""
    return _ARTIFACT_STATS


@pytest.fixture(scope="session")
def session_mode_registry():
    """Register per-mode wall/peak rows of the batch-vs-streaming benchmark."""
    return _SESSION_MODES


@pytest.fixture(scope="session")
def matcher_backend_registry():
    """Register per-backend wall/stats rows of the staged-matcher benchmark."""
    return _MATCHER_BACKENDS


@pytest.fixture(scope="session")
def service_latency_registry():
    """Register per-mode jobs/sec + latency rows of the service benchmark."""
    return _SERVICE_LATENCIES


@pytest.fixture(scope="session")
def incremental_registry():
    """Register per-mode wall-clock rows of the incremental benchmark."""
    return _INCREMENTAL_MODES


@pytest.fixture(scope="session")
def sweep_registry():
    """Register the workload-engine rows of the parameter-sweep benchmark."""
    return _SWEEP_ROWS


def _write_bench_artifact(terminalreporter, name: str, payload: dict) -> None:
    """Write one ``BENCH_*.json`` perf-trajectory artifact (best effort)."""
    # default next to the committed BENCH_*.json files (the repo root),
    # so a local benchmark run refreshes them in place
    directory = Path(os.environ.get("BENCH_ARTIFACTS_DIR")
                     or Path(__file__).resolve().parent.parent)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / name
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    except OSError as error:
        terminalreporter.write_line(f"could not write {name}: {error}")
        return
    terminalreporter.write_line(f"wrote {path}")


def _fig5_artifact() -> dict:
    """The ``BENCH_fig5.json`` payload: per-backend verify timings + stats."""
    backends = {backend: {"wall_seconds": row["wall"],
                          "stats": row["stats"].as_dict()}
                for backend, row in _MATCHER_BACKENDS.items()}
    payload = {"benchmark": "fig5_staged_matcher",
               "reduced": bool(os.environ.get("BENCH_FIG5_REDUCED")),
               "backends": backends}
    baseline = _MATCHER_BACKENDS.get("exact")
    if baseline is not None:
        for backend, row in _MATCHER_BACKENDS.items():
            backends[backend]["verify_speedup_vs_exact"] = (
                baseline["stats"].verify_seconds
                / max(row["stats"].verify_seconds, 1e-9))
    return payload


def _service_artifact() -> dict:
    """The ``BENCH_service.json`` payload: per-mode throughput + latency."""
    payload = {"benchmark": "service_throughput",
               "modes": {mode: dict(row) for mode, row in _SERVICE_LATENCIES.items()}}
    if {"cold", "resident"} <= set(_SERVICE_LATENCIES):
        payload["resident_speedup"] = (
            _SERVICE_LATENCIES["resident"]["jobs_per_sec"]
            / max(_SERVICE_LATENCIES["cold"]["jobs_per_sec"], 1e-9))
    return payload


def _incremental_artifact() -> dict:
    """The ``BENCH_incremental.json`` payload: full vs delta re-analysis."""
    payload = {"benchmark": "incremental_reanalysis",
               "reduced": bool(os.environ.get("BENCH_INCREMENTAL_REDUCED")),
               "modes": {mode: dict(row)
                         for mode, row in _INCREMENTAL_MODES.items()}}
    if {"full", "incremental"} <= set(_INCREMENTAL_MODES):
        payload["incremental_speedup"] = (
            _INCREMENTAL_MODES["full"]["wall"]
            / max(_INCREMENTAL_MODES["incremental"]["wall"], 1e-9))
    return payload


def _sweep_artifact() -> dict:
    """The ``BENCH_sweep.json`` payload: the workload-engine sweep rows."""
    return {"benchmark": "table9_fig9_sweep_engine",
            "reduced": bool(os.environ.get("BENCH_SWEEP_REDUCED")),
            "modes": {mode: dict(row) for mode, row in _SWEEP_ROWS.items()}}


def pytest_terminal_summary(terminalreporter):
    if _ARTIFACT_STATS:
        terminalreporter.section("artifact cache hit rate")
        total_lookups = total_hits = total_parses = 0
        for label, stats in _ARTIFACT_STATS:
            terminalreporter.write_line(render_cache_stats(stats, label=label))
            total_lookups += stats.lookups
            total_hits += stats.hits
            total_parses += stats.parse_calls
        if total_lookups:
            terminalreporter.write_line(
                f"overall: {total_hits}/{total_lookups} hits "
                f"({total_hits / total_lookups:.1%}), {total_parses} parses")
    if _SESSION_MODES:
        terminalreporter.section("session batch vs streaming (fig6)")
        for mode, row in _SESSION_MODES.items():
            terminalreporter.write_line(
                f"{mode:>6}: peak heap {row['peak'] / 1024.0:.0f} KiB, "
                f"wall {row['wall']:.2f}s")
        if {"batch", "stream"} <= set(_SESSION_MODES):
            batch, stream = _SESSION_MODES["batch"], _SESSION_MODES["stream"]
            saved = batch["peak"] - stream["peak"]
            terminalreporter.write_line(
                f" delta: streaming holds {saved / 1024.0:.0f} KiB less "
                f"({saved / max(batch['peak'], 1):.1%} of batch peak), "
                f"wall {stream['wall'] - batch['wall']:+.2f}s")
    if _MATCHER_BACKENDS:
        terminalreporter.section("clone matcher: staged pruning (fig5)")
        for backend, row in _MATCHER_BACKENDS.items():
            stats = row["stats"]
            terminalreporter.write_line(
                f"{backend:>8}: verify {stats.verify_seconds:.3f}s "
                f"(candidates {stats.candidate_seconds:.3f}s), "
                f"{stats.verified} candidates -> {stats.matched} matches, "
                f"{stats.pairs_scored} pair distances")
            terminalreporter.write_line(
                f"          dropped: {stats.pruned_by_length} by length bucket, "
                f"{stats.abandoned_by_mean} by mean bound, "
                f"{stats.pairs_skipped_by_bound} pairs by length bound, "
                f"{stats.pairs_cutoff} pairs by band cutoff "
                f"({stats.memo_hits} memo hits)")
        if {"exact", "bounded"} <= set(_MATCHER_BACKENDS):
            exact = _MATCHER_BACKENDS["exact"]["stats"]
            bounded = _MATCHER_BACKENDS["bounded"]["stats"]
            speedup = exact.verify_seconds / max(bounded.verify_seconds, 1e-9)
            terminalreporter.write_line(
                f"   delta: bounded verification {speedup:.1f}x faster "
                f"({exact.verify_seconds:.3f}s -> {bounded.verify_seconds:.3f}s) "
                f"with byte-identical matches")
        if {"bounded", "myers"} <= set(_MATCHER_BACKENDS):
            bounded = _MATCHER_BACKENDS["bounded"]["stats"]
            myers = _MATCHER_BACKENDS["myers"]["stats"]
            speedup = bounded.verify_seconds / max(myers.verify_seconds, 1e-9)
            terminalreporter.write_line(
                f"   delta: myers verification {speedup:.1f}x faster than "
                f"bounded ({bounded.verify_seconds:.3f}s -> "
                f"{myers.verify_seconds:.3f}s), "
                f"{myers.myers_words} bit-parallel words")
        _write_bench_artifact(terminalreporter, "BENCH_fig5.json", _fig5_artifact())
    if _SERVICE_LATENCIES:
        terminalreporter.section("service daemon: serving modes")
        for mode, row in _SERVICE_LATENCIES.items():
            line = (f"{mode:>16}: {row['jobs_per_sec']:.1f} jobs/sec over "
                    f"{row['jobs']} jobs, latency p50 {row['p50'] * 1000.0:.1f} ms, "
                    f"p95 {row['p95'] * 1000.0:.1f} ms")
            if "p99" in row:
                line += f", p99 {row['p99'] * 1000.0:.1f} ms"
            if "shed" in row:
                line += (f" ({row['requests']} requests: {row['shed']} shed, "
                         f"{row['errors']} errors, {row['hung']} hung)")
            terminalreporter.write_line(line)
        if {"cold", "resident"} <= set(_SERVICE_LATENCIES):
            cold, resident = _SERVICE_LATENCIES["cold"], _SERVICE_LATENCIES["resident"]
            speedup = resident["jobs_per_sec"] / max(cold["jobs_per_sec"], 1e-9)
            terminalreporter.write_line(
                f"    delta: resident index serves {speedup:.1f}x more jobs/sec "
                f"(p50 {cold['p50'] * 1000.0:.1f} ms -> "
                f"{resident['p50'] * 1000.0:.1f} ms) with identical envelopes")
        _write_bench_artifact(terminalreporter, "BENCH_service.json",
                              _service_artifact())
    if _INCREMENTAL_MODES:
        terminalreporter.section("incremental re-analysis (O(change))")
        for mode, row in _INCREMENTAL_MODES.items():
            line = f"{mode:>12}: wall {row['wall']:.3f}s"
            if "functions" in row:
                line += (f" ({row.get('functions_changed', '?')} of "
                         f"{row['functions']} functions re-analyzed)")
            terminalreporter.write_line(line)
        if {"full", "incremental"} <= set(_INCREMENTAL_MODES):
            full = _INCREMENTAL_MODES["full"]
            delta = _INCREMENTAL_MODES["incremental"]
            speedup = full["wall"] / max(delta["wall"], 1e-9)
            terminalreporter.write_line(
                f"       delta: one-function edit re-analyzes {speedup:.1f}x "
                f"faster ({full['wall']:.3f}s -> {delta['wall']:.3f}s) with "
                f"byte-identical envelopes")
        _write_bench_artifact(terminalreporter, "BENCH_incremental.json",
                              _incremental_artifact())
    if _SWEEP_ROWS:
        terminalreporter.section("parameter sweep: workload engine")
        for mode, row in _SWEEP_ROWS.items():
            terminalreporter.write_line(
                f"{mode:>8}: {row['grid_cells']} grid cells at "
                f"{row['chunks_per_sec']:.1f} chunks/sec, pause+resume "
                f"overhead {row['resume_overhead']:+.1%} "
                f"({row['wall_uninterrupted']:.3f}s -> "
                f"{row['wall_with_resume']:.3f}s)")
        _write_bench_artifact(terminalreporter, "BENCH_sweep.json",
                              _sweep_artifact())


@pytest.fixture(scope="session")
def smartbugs_corpus():
    """The full-scale labelled corpus (204 labels, as in Table 1)."""
    return generate_smartbugs_corpus(seed=13)


@pytest.fixture(scope="session")
def honeypot_corpus():
    """The honeypot clone corpus (Table 3 substrate)."""
    return generate_honeypot_corpus(seed=7)


@pytest.fixture(scope="session")
def qa_corpus():
    return generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 60, "ethereum.stackexchange": 150})


@pytest.fixture(scope="session")
def sanctuary(qa_corpus):
    return generate_sanctuary(qa_corpus, seed=11, independent_contracts=60)


@pytest.fixture(scope="session")
def study_result(qa_corpus, sanctuary, artifact_stats_registry):
    """One full study run shared by the Table 5-8 benchmarks."""
    store = ArtifactStore()
    with VulnerableCodeReuseStudy(
        StudyConfiguration(validation_timeout_seconds=20,
                           snippet_analysis_timeout_seconds=15),
        store=store,
    ) as study:
        result = study.run(qa_corpus, sanctuary.contracts)
    artifact_stats_registry.append(("study_result (shared fixture)", store.stats))
    return result
