"""Table 9 / Figure 9 — CCD parameter sweep (N-gram size, eta, epsilon).

Reproduced shape: precision rises and recall falls with the similarity
threshold epsilon; large N-gram sizes with strict thresholds give the best
precision at low recall; the best F1 combination sits at a small N with a
moderate epsilon.
"""

from repro.evaluation import sweep_ccd_parameters
from repro.evaluation.parameter_sweep import best_combination
from repro.pipeline.report import render_table


def test_table9_fig9_parameter_sweep(benchmark, honeypot_corpus):
    sweep = benchmark.pedantic(
        lambda: sweep_ccd_parameters(
            honeypot_corpus,
            ngram_sizes=(3, 5, 7),
            ngram_thresholds=(0.5, 0.7, 0.9),
            similarity_thresholds=(0.5, 0.7, 0.9),
        ),
        rounds=1, iterations=1)

    rows = [[point.ngram_size, point.ngram_threshold, point.similarity_threshold,
             round(point.precision, 4), round(point.recall, 4), round(point.f1, 4)]
            for point in sweep]
    print()
    print(render_table(["N", "eta", "epsilon", "Precision", "Recall", "F1"], rows,
                       title="Table 9 / Figure 9: CCD parameter sweep"))
    best = best_combination(sweep)
    print(f"best combination: N={best.ngram_size} eta={best.ngram_threshold} "
          f"epsilon={best.similarity_threshold} precision={best.precision:.4f} recall={best.recall:.4f}")

    by_key = {(p.ngram_size, p.ngram_threshold, p.similarity_threshold): p for p in sweep}
    # epsilon moves precision up and recall down (Figure 9's crossing curves)
    low, high = by_key[(3, 0.5, 0.5)], by_key[(3, 0.5, 0.9)]
    assert high.precision >= low.precision
    assert high.recall <= low.recall
    # the best trade-off uses a small N-gram size with a permissive eta,
    # never the strictest corner of the grid (the paper picks N=3, eta=0.5)
    assert best.ngram_size in (3, 5)
    assert best.ngram_threshold == 0.5
    # the strict corner has the highest precision but poor recall (Figure 9)
    strict = by_key[(7, 0.9, 0.9)]
    assert strict.precision >= best.precision - 1e-9
    assert strict.recall <= best.recall
