"""Table 9 / Figure 9 — CCD parameter sweep (N-gram size, eta, epsilon).

Reproduced shape: precision rises and recall falls with the similarity
threshold epsilon; large N-gram sizes with strict thresholds give the best
precision at low recall; the best F1 combination sits at a small N with a
moderate epsilon.

``test_sweep_workload_engine`` additionally measures the **workload
engine** running the same sweep as a chunked, resumable job: grid
size, chunks/second, and the wall-clock overhead of a mid-run pause +
resume versus an uninterrupted run (``BENCH_sweep.json``, reduced grid
in CI via ``BENCH_SWEEP_REDUCED=1``).
"""

import os
import time

from repro.evaluation import sweep_ccd_parameters
from repro.evaluation.parameter_sweep import best_combination
from repro.pipeline.report import render_table

REDUCED = bool(os.environ.get("BENCH_SWEEP_REDUCED"))

#: the engine benchmark's grid — 8 cells reduced, 27 cells full
ENGINE_PARAMS = {
    "honeypot": {"seed": 7, "counts": {"balance_disorder": 3,
                                       "hidden_transfer": 3,
                                       "skip_empty_string_literal": 3}}
    if REDUCED else {"seed": 7, "counts": None},
    "ngram_sizes": [3, 5] if REDUCED else [3, 5, 7],
    "ngram_thresholds": [0.5, 0.7] if REDUCED else [0.5, 0.7, 0.9],
    "similarity_thresholds": [0.5, 0.9] if REDUCED else [0.5, 0.7, 0.9],
}


def _run_sweep_job(store, registry, should_stop=None):
    """Claim and drain the next workload job; returns its outcome."""
    from repro.service.workloads import run_workload_job

    job = store.claim_next()
    outcome = run_workload_job(job, store, registry=registry,
                               should_stop=should_stop)
    if outcome != "paused":
        store.finish(job.job_id, outcome)
    return job.job_id, outcome


def test_sweep_workload_engine(benchmark, tmp_path_factory, sweep_registry):
    """The sweep as a durable workload: chunk rate and resume overhead."""
    from repro.service.jobstore import JobStore
    from repro.service.workloads import WORKLOADS

    workload = WORKLOADS.get("parameter_sweep")
    params = workload.normalize(ENGINE_PARAMS)
    grid = len(workload.decompose(params))
    tmp_path = tmp_path_factory.mktemp("sweep-engine")

    with JobStore(tmp_path / "jobs.sqlite") as store:
        store.submit([], [], workload={"kind": "parameter_sweep",
                                       "params": params})
        started = time.perf_counter()
        job_id, outcome = benchmark.pedantic(
            lambda: _run_sweep_job(store, WORKLOADS), rounds=1, iterations=1)
        uninterrupted = time.perf_counter() - started
        assert outcome == "done"
        reference = store.results(job_id)[0][1]

    with JobStore(tmp_path / "resumed.sqlite") as store:
        store.submit([], [], workload={"kind": "parameter_sweep",
                                       "params": params})
        half = grid // 2
        ticks = iter(range(grid + 2))
        started = time.perf_counter()
        _job_id, outcome = _run_sweep_job(
            store, WORKLOADS, should_stop=lambda: next(ticks) >= half)
        assert outcome == "paused"
        assert store.recover() == 1  # the crash-recovery path
        job_id, outcome = _run_sweep_job(store, WORKLOADS)
        interrupted = time.perf_counter() - started
        assert outcome == "done"
        # resume is byte-identical to the uninterrupted run
        assert store.results(job_id)[0][1] == reference
        done = store.chunk_progress(job_id)
        assert done["done"] == done["total"] == grid

    sweep_registry["engine"] = {
        "grid_cells": grid,
        "wall_uninterrupted": uninterrupted,
        "wall_with_resume": interrupted,
        "chunks_per_sec": grid / max(uninterrupted, 1e-9),
        "resume_overhead": (interrupted - uninterrupted)
        / max(uninterrupted, 1e-9),
    }


def test_table9_fig9_parameter_sweep(benchmark, honeypot_corpus):
    sweep = benchmark.pedantic(
        lambda: sweep_ccd_parameters(
            honeypot_corpus,
            ngram_sizes=(3, 5, 7),
            ngram_thresholds=(0.5, 0.7, 0.9),
            similarity_thresholds=(0.5, 0.7, 0.9),
        ),
        rounds=1, iterations=1)

    rows = [[point.ngram_size, point.ngram_threshold, point.similarity_threshold,
             round(point.precision, 4), round(point.recall, 4), round(point.f1, 4)]
            for point in sweep]
    print()
    print(render_table(["N", "eta", "epsilon", "Precision", "Recall", "F1"], rows,
                       title="Table 9 / Figure 9: CCD parameter sweep"))
    best = best_combination(sweep)
    print(f"best combination: N={best.ngram_size} eta={best.ngram_threshold} "
          f"epsilon={best.similarity_threshold} precision={best.precision:.4f} recall={best.recall:.4f}")

    by_key = {(p.ngram_size, p.ngram_threshold, p.similarity_threshold): p for p in sweep}
    # epsilon moves precision up and recall down (Figure 9's crossing curves)
    low, high = by_key[(3, 0.5, 0.5)], by_key[(3, 0.5, 0.9)]
    assert high.precision >= low.precision
    assert high.recall <= low.recall
    # the best trade-off uses a small N-gram size with a permissive eta,
    # never the strictest corner of the grid (the paper picks N=3, eta=0.5)
    assert best.ngram_size in (3, 5)
    assert best.ngram_threshold == 0.5
    # the strict corner has the highest precision but poor recall (Figure 9)
    strict = by_key[(7, 0.9, 0.9)]
    assert strict.precision >= best.precision - 1e-9
    assert strict.recall <= best.recall
