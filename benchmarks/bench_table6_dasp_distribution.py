"""Table 6 — DASP Top-10 distribution across vulnerable snippets and contracts."""

from repro.pipeline.report import render_table


def test_table6_dasp_distribution(benchmark, study_result):
    distribution = benchmark.pedantic(study_result.dasp_distribution, rounds=1, iterations=1)

    rows = [[category.value, counts["snippets"], counts["contracts"]]
            for category, counts in distribution.items()]
    print()
    print(render_table(["Vulnerability Category", "Snippets", "Contracts"], rows,
                       title="Table 6: DASP categories across vulnerable snippets and contracts"))

    total_snippets = sum(counts["snippets"] for counts in distribution.values())
    total_contracts = sum(counts["contracts"] for counts in distribution.values())
    assert total_snippets > 0
    assert total_contracts > 0
    # several distinct categories appear among both snippets and contracts
    assert sum(1 for counts in distribution.values() if counts["snippets"]) >= 5
    assert sum(1 for counts in distribution.values() if counts["contracts"]) >= 4
