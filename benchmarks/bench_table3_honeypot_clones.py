"""Table 3 — CCD vs. the SmartEmbed-style baseline on the honeypot corpus.

Reproduced shape: CCD reports fewer false positives and achieves higher
precision than the structural-embedding baseline, at comparable true
positive counts.
"""

from repro.evaluation import evaluate_ccd_on_honeypots, evaluate_smartembed_on_honeypots
from repro.pipeline.report import render_table


def test_table3_honeypot_clone_detection(benchmark, honeypot_corpus):
    ccd = benchmark.pedantic(
        lambda: evaluate_ccd_on_honeypots(honeypot_corpus,
                                          ngram_size=3, ngram_threshold=0.5, similarity_threshold=0.7),
        rounds=1, iterations=1)
    smartembed = evaluate_smartembed_on_honeypots(honeypot_corpus, similarity_threshold=0.9)

    smartembed_by_type = {row["type"]: row for row in smartembed.rows()}
    rows = []
    for row in ccd.rows():
        other = smartembed_by_type.get(row["type"], {"tp": 0, "fp": 0})
        rows.append([row["type"], other["tp"], other["fp"], row["tp"], row["fp"]])
    rows.append(["Total", smartembed.total_true_positives, smartembed.total_false_positives,
                 ccd.total_true_positives, ccd.total_false_positives])
    print()
    print(render_table(
        ["Honeypot Type", "SmartEmbed TP", "SmartEmbed FP", "CCD TP", "CCD FP"],
        rows, title="Table 3: clone detection on honeypot families"))
    print(f"SmartEmbed-like: precision={smartembed.precision:.4f} recall={smartembed.recall:.4f} f1={smartembed.f1:.4f}")
    print(f"CCD            : precision={ccd.precision:.4f} recall={ccd.recall:.4f} f1={ccd.f1:.4f}")

    assert ccd.total_false_positives < smartembed.total_false_positives
    assert ccd.precision > smartembed.precision
    assert ccd.f1 > smartembed.f1
    assert ccd.total_true_positives > 0
