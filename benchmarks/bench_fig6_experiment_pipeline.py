"""Figures 1 and 6 — the end-to-end experiment pipeline.

Benchmarks one complete study run (collection -> CCD clone mapping -> CCC
snippet analysis -> temporal filtering -> CCC validation) on a small
synthetic corpus and checks the qualitative result of the paper: vulnerable
snippets from Q&A websites are found, cloned into deployed contracts, and
the majority of those contracts do not add a mitigation.
"""

from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline import StudyConfiguration, VulnerableCodeReuseStudy


def test_fig6_end_to_end_study(benchmark):
    qa_corpus = generate_qa_corpus(
        seed=23, posts_per_site={"stackoverflow": 30, "ethereum.stackexchange": 70})
    sanctuary = generate_sanctuary(qa_corpus, seed=29, independent_contracts=30)

    def run_study():
        study = VulnerableCodeReuseStudy(StudyConfiguration(
            validation_timeout_seconds=15, snippet_analysis_timeout_seconds=10))
        return study.run(qa_corpus, sanctuary.contracts)

    result = benchmark.pedantic(run_study, rounds=1, iterations=1)
    funnel = result.funnel()
    print()
    print(f"pipeline funnel: {funnel}")

    assert funnel["vulnerable_snippets"] > 0
    assert funnel["disseminator_snippets"] > 0
    assert funnel["vulnerable_contracts"] > 0
    # most validated contracts embedding a vulnerable snippet stay vulnerable
    assert funnel["vulnerable_contracts"] >= 0.5 * max(funnel["validated_contracts"], 1)
