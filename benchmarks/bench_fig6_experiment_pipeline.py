"""Figures 1 and 6 — the end-to-end experiment pipeline.

Benchmarks one complete study run (collection -> CCD clone mapping -> CCC
snippet analysis -> temporal filtering -> CCC validation) on a small
synthetic corpus and checks the qualitative result of the paper: vulnerable
snippets from Q&A websites are found, cloned into deployed contracts, and
the majority of those contracts do not add a mitigation.

The benchmark is parametrized over the executor backends of the shared
analysis core so that serial and parallel wall-clock can be compared
(``--benchmark-group-by=func`` groups them side by side).  On a single-core
runner the thread/process rows mostly measure dispatch overhead; the
assertion is parity of results, not speedup.

A second parametrization compares disk-cache temperature: the ``cold``
row runs against an empty :class:`~repro.core.persistence.DiskArtifactStore`
directory, the ``warm`` row reruns the identical study against the cache
the cold run left behind and asserts the headline guarantee — **zero
parses** — while producing an identical funnel.  The terminal summary
reports memory- and disk-tier hit rates for every registered store.
"""

import time
import tracemalloc

import pytest

from repro.api import AnalysisSession, SessionConfig
from repro.core.artifacts import ArtifactStore
from repro.core.persistence import DiskArtifactStore
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline import StudyConfiguration, VulnerableCodeReuseStudy


@pytest.fixture(scope="module")
def fig6_corpora():
    qa_corpus = generate_qa_corpus(
        seed=23, posts_per_site={"stackoverflow": 30, "ethereum.stackexchange": 70})
    sanctuary = generate_sanctuary(qa_corpus, seed=29, independent_contracts=30)
    return qa_corpus, sanctuary.contracts


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_fig6_end_to_end_study(benchmark, backend, fig6_corpora, artifact_stats_registry):
    qa_corpus, contracts = fig6_corpora

    def run_study():
        store = ArtifactStore()
        with VulnerableCodeReuseStudy(
            StudyConfiguration(validation_timeout_seconds=15,
                               snippet_analysis_timeout_seconds=10,
                               executor_backend=backend),
            store=store,
        ) as study:
            return store, study.run(qa_corpus, contracts)

    store, result = benchmark.pedantic(run_study, rounds=1, iterations=1)
    artifact_stats_registry.append((f"fig6 study [{backend}]", store.stats))
    funnel = result.funnel()
    print()
    print(f"pipeline funnel [{backend}]: {funnel}")

    assert funnel["vulnerable_snippets"] > 0
    assert funnel["disseminator_snippets"] > 0
    assert funnel["vulnerable_contracts"] > 0
    # most validated contracts embedding a vulnerable snippet stay vulnerable
    assert funnel["vulnerable_contracts"] >= 0.5 * max(funnel["validated_contracts"], 1)
    # the shared store keeps the parse-once guarantee during the whole study
    assert store.stats.parse_calls == store.stats.misses


#: funnel counts per session mode, asserted identical between the rows
_MODE_COUNTS: dict[str, tuple] = {}


@pytest.mark.parametrize("mode", ["batch", "stream"])
def test_fig6_session_batch_vs_stream(benchmark, mode, fig6_corpora,
                                      session_mode_registry):
    """Batch ``session.run`` vs streaming ``session.run_iter`` on ccd+ccc.

    Both modes aggregate the same counters from the same corpus; the
    streaming row never holds the envelope list, so its peak traced heap
    is what a million-contract corpus would save.  The terminal summary
    reports both rows and their delta.
    """
    _, contracts = fig6_corpora

    def run_session():
        with AnalysisSession(SessionConfig(checker_timeout=10)) as session:
            tracemalloc.start()
            started = time.perf_counter()
            items = with_clones = flagged = 0
            if mode == "batch":
                envelopes = session.run(contracts, analyses=["ccd", "ccc"])
            else:
                envelopes = session.run_iter(contracts, analyses=["ccd", "ccc"])
            for envelope in envelopes:
                items += 1
                if envelope.analyzer == "ccd" and envelope.payload:
                    with_clones += 1
                elif envelope.analyzer == "ccc" and envelope.payload.findings:
                    flagged += 1
            wall = time.perf_counter() - started
            peak = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()
        return items, with_clones, flagged, wall, peak

    items, with_clones, flagged, wall, peak = benchmark.pedantic(
        run_session, rounds=1, iterations=1)
    session_mode_registry[mode] = {"wall": wall, "peak": peak}
    print()
    print(f"session [{mode}]: {items} envelopes over {len(contracts)} "
          f"contracts, {with_clones} with clones, {flagged} flagged; "
          f"peak heap {peak / 1024.0:.0f} KiB")

    assert items == 2 * len(contracts)
    assert with_clones > 0 and flagged > 0
    # parametrization order is preserved: the stream row checks parity
    # against the batch row's aggregate counts
    _MODE_COUNTS[mode] = (items, with_clones, flagged)
    if mode == "stream" and "batch" in _MODE_COUNTS:
        assert _MODE_COUNTS["stream"] == _MODE_COUNTS["batch"]


@pytest.fixture(scope="module")
def fig6_cache_dir(tmp_path_factory):
    """One cache directory shared by the cold and warm disk-cache rows."""
    return tmp_path_factory.mktemp("fig6-disk-cache")


@pytest.mark.parametrize("temperature", ["cold", "warm"])
def test_fig6_disk_cache_cold_vs_warm(benchmark, temperature, fig6_corpora,
                                      fig6_cache_dir, artifact_stats_registry):
    """Cold-vs-warm study wall clock against a persistent artifact cache.

    Parametrization order matters and pytest preserves it: ``cold``
    populates the cache directory, ``warm`` reruns the identical study
    against it.  The warm run must not parse, translate, or fingerprint
    anything — every artifact hydrates from the SQLite tier.
    """
    qa_corpus, contracts = fig6_corpora

    def run_study():
        store = DiskArtifactStore(fig6_cache_dir)
        with VulnerableCodeReuseStudy(
            StudyConfiguration(validation_timeout_seconds=15,
                               snippet_analysis_timeout_seconds=10),
            store=store,
        ) as study:
            result = study.run(qa_corpus, contracts)
        store.close()
        return store, result

    store, result = benchmark.pedantic(run_study, rounds=1, iterations=1)
    artifact_stats_registry.append((f"fig6 disk cache [{temperature}]", store.stats))
    funnel = result.funnel()
    print()
    print(f"pipeline funnel [disk cache {temperature}]: {funnel}")
    print(f"disk tier [{temperature}]: {store.stats.disk_hits} hits, "
          f"{store.stats.disk_writes} writes "
          f"({store.stats.disk_hit_rate:.1%} hit rate)")

    assert funnel["vulnerable_contracts"] > 0
    if temperature == "cold":
        assert store.stats.parse_calls > 0
        assert store.stats.disk_writes > 0
    else:
        # the headline guarantee: a warm rerun performs zero parses
        assert store.stats.parse_calls == 0
        assert store.stats.cpg_builds == 0
        assert store.stats.fingerprint_builds == 0
        assert store.stats.disk_hits > 0
