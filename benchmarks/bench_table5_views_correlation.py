"""Table 5 — Spearman correlation of post views and containing contracts.

Reproduced shape: the correlation is weakest for the unrestricted group,
stronger for disseminator snippets, and strongest for source snippets.
"""

from repro.pipeline.report import render_table


def test_table5_views_vs_adoption(benchmark, study_result):
    correlations = benchmark.pedantic(lambda: study_result.correlations, rounds=1, iterations=1)

    rows = [[result.category, result.sample_size, round(result.rho, 3),
             f"{result.p_value:.3g}"] for result in correlations]
    print()
    print(render_table(["Temporal Category", "Sample Size", "rho", "p-value"], rows,
                       title="Table 5: Spearman correlation of views and containing contracts"))

    by_name = {result.category: result for result in correlations}
    assert set(by_name) == {"All Snippets", "Disseminator", "Source"}
    # the temporally restricted source group shows the strongest positive
    # relationship between views and adoption
    assert by_name["Source"].rho >= by_name["All Snippets"].rho
    assert by_name["Source"].rho > 0
    assert abs(by_name["All Snippets"].rho) < 0.5
    assert by_name["Source"].sample_size <= by_name["Disseminator"].sample_size <= by_name["All Snippets"].sample_size
